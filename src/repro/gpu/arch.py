"""GPU architecture descriptions.

The quantities modeled here are the ones the paper's analysis depends on:

* the number of SMs and the per-SM resource limits, which (with a kernel's
  resource usage) determine occupancy and therefore thread blocks per wave;
* per-SM compute throughput and memory bandwidth, which give the duration of
  a tile computation;
* latencies of the operations cuSync adds: global-memory semaphore reads,
  atomic increments, ``__syncthreads``/memory fences and kernel launches.

The default preset is an NVIDIA Tesla V100 (the paper's evaluation GPU,
80 SMs).  An A100 preset is provided because the paper notes the wait-kernel
scheduling assumption holds on Volta and Ampere.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.common.validation import check_positive


@dataclass(frozen=True)
class GpuArchitecture:
    """Static description of a GPU used by the simulator and cost model.

    Times are expressed in microseconds, sizes in bytes, throughputs in
    FLOP/µs and bytes/µs per SM, so durations computed from them are directly
    comparable with the paper's microsecond-scale kernel times.
    """

    name: str
    #: Number of streaming multiprocessors.
    num_sms: int
    #: Hard cap on resident thread blocks per SM.
    max_blocks_per_sm: int
    #: Maximum resident threads per SM.
    max_threads_per_sm: int
    #: Maximum threads per thread block.
    max_threads_per_block: int
    #: 32-bit registers available per SM.
    registers_per_sm: int
    #: Shared memory per SM in bytes.
    shared_memory_per_sm: int
    #: Peak half-precision (tensor core) throughput per SM in FLOP/µs.
    fp16_flops_per_sm_us: float
    #: Peak single-precision throughput per SM in FLOP/µs.
    fp32_flops_per_sm_us: float
    #: Global-memory bandwidth per SM in bytes/µs (device bandwidth / SMs).
    bytes_per_sm_us: float
    #: Latency of a dependent global memory access (semaphore poll), µs.
    global_latency_us: float
    #: Latency of a global-memory atomic add, µs.
    atomic_latency_us: float
    #: Cost of a ``__syncthreads`` + ``__threadfence_system`` pair, µs.
    fence_latency_us: float
    #: Host-side latency of launching a kernel, µs (the paper measures ~6 µs).
    kernel_launch_latency_us: float
    #: Device-side gap between one kernel finishing and an already-queued
    #: kernel on the same stream starting to dispatch blocks, µs.  Exposed on
    #: every kernel boundary under stream synchronization; hidden by cuSync
    #: because the dependent kernel's blocks are already resident.
    kernel_dispatch_latency_us: float
    #: Extra latency for a busy-waiting block to notice a posted semaphore, µs.
    wait_resume_latency_us: float
    #: Achievable fraction of peak throughput for well-tuned tiled kernels.
    compute_efficiency: float = 0.8
    #: Achievable fraction of peak memory bandwidth.
    memory_efficiency: float = 0.75
    #: Free-form extra attributes (e.g. NVLink bandwidth for multi-GPU runs).
    extras: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive("num_sms", self.num_sms)
        check_positive("max_blocks_per_sm", self.max_blocks_per_sm)
        check_positive("fp16_flops_per_sm_us", self.fp16_flops_per_sm_us)
        check_positive("bytes_per_sm_us", self.bytes_per_sm_us)
        if not (0.0 < self.compute_efficiency <= 1.0):
            raise ValueError(f"compute_efficiency must be in (0, 1], got {self.compute_efficiency}")
        if not (0.0 < self.memory_efficiency <= 1.0):
            raise ValueError(f"memory_efficiency must be in (0, 1], got {self.memory_efficiency}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def device_fp16_flops_us(self) -> float:
        """Aggregate half-precision throughput of the device in FLOP/µs."""
        return self.fp16_flops_per_sm_us * self.num_sms

    @property
    def device_bandwidth_bytes_us(self) -> float:
        """Aggregate global-memory bandwidth of the device in bytes/µs."""
        return self.bytes_per_sm_us * self.num_sms

    def blocks_per_wave(self, occupancy: int) -> int:
        """Thread blocks executed per wave for a kernel with ``occupancy``."""
        check_positive("occupancy", occupancy)
        return self.num_sms * occupancy

    def with_overrides(self, **kwargs) -> "GpuArchitecture":
        """Return a copy with some fields replaced (for what-if studies)."""
        return replace(self, **kwargs)


#: NVIDIA Tesla V100-SXM2 32GB — the GPU used throughout the paper's
#: evaluation (80 SMs, ~112 TFLOP/s FP16 tensor cores, ~900 GB/s HBM2).
TESLA_V100 = GpuArchitecture(
    name="Tesla V100",
    num_sms=80,
    max_blocks_per_sm=32,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    shared_memory_per_sm=96 * 1024,
    fp16_flops_per_sm_us=1.4e6,   # 112 TFLOP/s / 80 SMs
    fp32_flops_per_sm_us=0.175e6,  # 14 TFLOP/s / 80 SMs
    bytes_per_sm_us=11250.0,       # 900 GB/s / 80 SMs
    global_latency_us=0.6,
    atomic_latency_us=0.4,
    fence_latency_us=0.3,
    kernel_launch_latency_us=6.0,
    kernel_dispatch_latency_us=3.0,
    wait_resume_latency_us=0.5,
    extras={"nvlink_bandwidth_bytes_us": 150_000.0},
)

#: NVIDIA A100-SXM4 80GB — included because the paper states the kernel
#: scheduling order assumption also holds on Ampere GPUs.
AMPERE_A100 = GpuArchitecture(
    name="A100",
    num_sms=108,
    max_blocks_per_sm=32,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    shared_memory_per_sm=164 * 1024,
    fp16_flops_per_sm_us=2.89e6,   # 312 TFLOP/s / 108 SMs
    fp32_flops_per_sm_us=0.18e6,
    bytes_per_sm_us=18000.0,       # ~1.94 TB/s / 108 SMs
    global_latency_us=0.5,
    atomic_latency_us=0.35,
    fence_latency_us=0.25,
    kernel_launch_latency_us=5.0,
    kernel_dispatch_latency_us=2.5,
    wait_resume_latency_us=0.4,
    extras={"nvlink_bandwidth_bytes_us": 300_000.0},
)
