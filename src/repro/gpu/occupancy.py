"""Occupancy calculation.

Occupancy — the number of thread blocks resident on one SM — is central to
the paper: thread blocks execute in ``ceil(blocks / (occupancy * SMs))``
waves, and the under-utilized final wave is what cuSync recovers.  This
module reproduces the standard CUDA occupancy calculation from a kernel's
resource usage (threads, registers, shared memory) and the architecture's
per-SM limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.validation import check_non_negative, check_positive
from repro.gpu.arch import GpuArchitecture


@dataclass(frozen=True)
class KernelResources:
    """Per-thread-block resource usage of a kernel."""

    #: Threads per thread block.
    threads_per_block: int = 256
    #: 32-bit registers used per thread.
    registers_per_thread: int = 64
    #: Shared memory per thread block in bytes.
    shared_memory_per_block: int = 48 * 1024

    def __post_init__(self) -> None:
        check_positive("threads_per_block", self.threads_per_block)
        check_non_negative("registers_per_thread", self.registers_per_thread)
        check_non_negative("shared_memory_per_block", self.shared_memory_per_block)


class OccupancyCalculator:
    """Compute the occupancy of a kernel on a given architecture.

    The calculation takes the minimum over the classic four limiters:
    the hard cap on blocks per SM, the thread limit, the register file and
    the shared-memory capacity.  The result is clamped to at least 1 so that
    even an over-budget kernel can run (mirroring CUDA, where such a kernel
    fails to launch; raising instead would only complicate what-if studies).
    """

    def __init__(self, arch: GpuArchitecture):
        self.arch = arch

    def blocks_per_sm(self, resources: KernelResources) -> int:
        """Resident thread blocks per SM for a kernel with ``resources``."""
        arch = self.arch
        limits = [arch.max_blocks_per_sm]

        if resources.threads_per_block > 0:
            limits.append(arch.max_threads_per_sm // resources.threads_per_block)

        registers_per_block = resources.registers_per_thread * resources.threads_per_block
        if registers_per_block > 0:
            limits.append(arch.registers_per_sm // registers_per_block)

        if resources.shared_memory_per_block > 0:
            limits.append(arch.shared_memory_per_sm // resources.shared_memory_per_block)

        occupancy = min(limits)
        return max(1, occupancy)

    def blocks_per_wave(self, resources: KernelResources) -> int:
        """Thread blocks executed per wave across the whole GPU."""
        return self.blocks_per_sm(resources) * self.arch.num_sms

    def waves(self, total_blocks: int, resources: KernelResources) -> float:
        """Fractional number of waves for ``total_blocks`` thread blocks.

        This matches the paper's presentation (e.g. "1.2 waves" in Table I):
        the fraction conveys how under-utilized the final wave is.
        """
        check_non_negative("total_blocks", total_blocks)
        per_wave = self.blocks_per_wave(resources)
        return total_blocks / per_wave


#: Resource presets matching the kernels in the paper's evaluation.
#: CUTLASS-style GeMM/Conv2D main-loop kernels use large shared-memory tiles
#: and many registers, yielding occupancy 1; light elementwise kernels reach
#: the architectural maximum (the paper's overhead study uses occupancy 16).
GEMM_KERNEL_RESOURCES = KernelResources(
    threads_per_block=256,
    registers_per_thread=255,
    shared_memory_per_block=96 * 1024,
)

CONV2D_KERNEL_RESOURCES = KernelResources(
    threads_per_block=256,
    registers_per_thread=255,
    shared_memory_per_block=96 * 1024,
)

SOFTMAX_KERNEL_RESOURCES = KernelResources(
    threads_per_block=256,
    registers_per_thread=64,
    shared_memory_per_block=16 * 1024,
)

COPY_KERNEL_RESOURCES = KernelResources(
    threads_per_block=128,
    registers_per_thread=32,
    shared_memory_per_block=0,
)
