"""Discrete-event GPU simulator substrate.

The paper evaluates cuSync on NVIDIA V100 GPUs.  This reproduction has no
GPU, so this package provides the substrate the rest of the library runs on:
a simulator that models the parts of the hardware/runtime the paper's
mechanisms interact with —

* Streaming Multiprocessors (SMs) and per-kernel occupancy, which determine
  how many thread blocks run concurrently and therefore how many *waves* a
  kernel needs (:mod:`repro.gpu.arch`, :mod:`repro.gpu.occupancy`);
* CUDA streams and the launch-order thread-block scheduler the paper's
  wait-kernel mechanism relies on (:mod:`repro.gpu.stream`,
  :mod:`repro.gpu.simulator`);
* global memory, semaphore arrays and atomics used by cuSync's wait/post
  (:mod:`repro.gpu.memory`);
* an analytical cost model for tile computations, tile loads and
  synchronization operations (:mod:`repro.gpu.costmodel`);
* execution traces with utilization and wave statistics
  (:mod:`repro.gpu.trace`).

Thread blocks are described as small *programs* (sequences of segments with
waits, modeled durations and posts, :mod:`repro.gpu.kernel`), which the
simulator executes with discrete-event semantics.  Wave quantization,
overlap between kernels, busy-wait occupancy and deadlocks all emerge from
the model rather than being hard-coded.
"""

from repro.gpu.arch import (
    ADA_RTX_4090,
    AMPERE_A100,
    ArchLike,
    ArchSpec,
    GpuArchitecture,
    HOPPER_H100,
    TESLA_V100,
    canonical_arch_key,
    register_arch,
    registered_archs,
    resolve_arch,
    unregister_arch,
)
from repro.gpu.occupancy import OccupancyCalculator, KernelResources
from repro.gpu.memory import GlobalMemory, SemaphoreArray
from repro.gpu.stream import Stream, StreamManager
from repro.gpu.kernel import (
    SemWait,
    SemPost,
    TensorAccess,
    Segment,
    ThreadBlockProgram,
    KernelLaunch,
)
from repro.gpu.costmodel import CostModel
from repro.gpu.simulator import GpuSimulator, SimulationResult
from repro.gpu.trace import BlockRecord, KernelStats, ExecutionTrace, wave_count, analytic_utilization

__all__ = [
    "GpuArchitecture",
    "TESLA_V100",
    "AMPERE_A100",
    "HOPPER_H100",
    "ADA_RTX_4090",
    "ArchLike",
    "ArchSpec",
    "canonical_arch_key",
    "register_arch",
    "registered_archs",
    "resolve_arch",
    "unregister_arch",
    "OccupancyCalculator",
    "KernelResources",
    "GlobalMemory",
    "SemaphoreArray",
    "Stream",
    "StreamManager",
    "SemWait",
    "SemPost",
    "TensorAccess",
    "Segment",
    "ThreadBlockProgram",
    "KernelLaunch",
    "CostModel",
    "GpuSimulator",
    "SimulationResult",
    "BlockRecord",
    "KernelStats",
    "ExecutionTrace",
    "wave_count",
    "analytic_utilization",
]
