"""Kernel launches and per-thread-block programs.

The simulator does not interpret CUDA; instead every kernel describes the
behaviour of one thread block as a small *program*: an ordered list of
:class:`Segment` objects.  A segment corresponds to one synchronization-
relevant phase of the thread block (e.g. "wait for the producer tile of A,
load the A and B tiles, run the main loop over this K chunk") and carries

* the semaphore waits that must be satisfied before the segment can run,
* a modeled duration in microseconds (from :mod:`repro.gpu.costmodel`),
* the semaphore posts performed when the segment finishes,
* optional tensor reads/writes (for data-race checking) and an optional
  callable that performs the real numpy computation in functional mode.

This decomposition is exactly the structure cuSync imposes on kernels in the
paper (Figure 4a): ``stage.wait`` before loading a tile, the tile
computation, and ``stage.post`` after the tile is computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Hashable, List, NamedTuple, Optional, Sequence, Tuple

from repro.common.dim3 import Dim3
from repro.common.tiles import delinearize
from repro.common.validation import check_non_negative, check_positive
from repro.gpu.memory import GlobalMemory
from repro.gpu.stream import Stream, DEFAULT_STREAM


class SemWait(NamedTuple):
    """Block until semaphore ``index`` of array ``array`` reaches ``required``.

    The wait is satisfied when the semaphore value is greater than or equal
    to ``required``; semaphores in cuSync only ever increase within one
    pipeline invocation, so the monotone comparison matches the paper's
    busy-wait loop.  (A NamedTuple rather than a frozen dataclass: waits are
    constructed once per planned read chunk, and the C-level tuple
    constructor keeps per-block program building off the profile.)
    """

    array: str
    index: int
    required: int

    def satisfied(self, memory: GlobalMemory) -> bool:
        return memory.semaphore_value(self.array, self.index) >= self.required


class SemPost(NamedTuple):
    """Atomically add ``increment`` to semaphore ``index`` of ``array``."""

    array: str
    index: int
    increment: int = 1

    def apply(self, memory: GlobalMemory) -> int:
        return memory.atomic_add(self.array, self.index, self.increment)


@dataclass(frozen=True, slots=True)
class TensorAccess:
    """A read or write of one tile of a named tensor (for race detection)."""

    tensor: str
    tile_key: Hashable


@dataclass(slots=True)
class Segment:
    """One phase of a thread block's execution.

    Segments may be shared between the cached block programs of several
    thread blocks, so the simulator treats them as immutable.
    """

    #: Human-readable label, e.g. ``"k-chunk 3"`` — only used in traces.
    label: str = ""
    #: Semaphore conditions that must hold before the segment starts.
    waits: List[SemWait] = field(default_factory=list)
    #: Modeled duration of the segment's loads + compute, in microseconds.
    duration_us: float = 0.0
    #: Portion of ``duration_us`` that can be overlapped with busy-waiting on
    #: this segment's semaphores (the "reorder tile loads" optimization: the
    #: block prefetches the non-dependent operand while it waits).  The
    #: simulator credits ``min(overlappable_us, actual wait time)``.
    overlappable_us: float = 0.0
    #: Semaphores posted when the segment completes.
    posts: List[SemPost] = field(default_factory=list)
    #: Tiles of producer-owned tensors this segment reads.
    reads: List[TensorAccess] = field(default_factory=list)
    #: Tiles this segment writes (marked available when the segment ends).
    writes: List[TensorAccess] = field(default_factory=list)
    #: Optional functional computation, executed when the segment completes.
    compute: Optional[Callable[[GlobalMemory], None]] = None
    #: When positive, a block parked on this segment's waits models a
    #: busy-wait loop polling its semaphores every ``poll_interval_us``
    #: (the wait kernel's single-thread spin, Section III-B): on resume it
    #: charges one poll per wait per elapsed interval to the memory
    #: system's read counter.  Purely an accounting refinement — the block
    #: still parks in the wake index and wakes exactly once, so event
    #: counts and times are untouched.  Zero (the default) charges only
    #: the parking-time polls.
    poll_interval_us: float = 0.0

    def __post_init__(self) -> None:
        # Inlined check_non_negative: segments are built once per dispatched
        # block, so the extra call frame was a measurable dispatch cost.
        if self.duration_us < 0:
            check_non_negative("duration_us", self.duration_us)


@dataclass(slots=True)
class ThreadBlockProgram:
    """The full behaviour of one thread block: an ordered list of segments."""

    tile: Dim3
    segments: List[Segment] = field(default_factory=list)

    @property
    def total_duration_us(self) -> float:
        """Sum of the modeled durations of all segments (excludes waiting)."""
        return sum(segment.duration_us for segment in self.segments)

    @property
    def wait_count(self) -> int:
        """Total number of semaphore waits in the program."""
        return sum(len(segment.waits) for segment in self.segments)

    @property
    def post_count(self) -> int:
        """Total number of semaphore posts in the program."""
        return sum(len(segment.posts) for segment in self.segments)


#: Signature of the callable a kernel provides to build a block's program.
ProgramBuilder = Callable[[Dim3], ThreadBlockProgram]

#: Signature of a tile-processing order: maps the dispatch counter value a
#: thread block obtained to the tile it should process.
TileOrderFn = Callable[[int], Dim3]


#: Grids bigger than this are enumerated transiently instead of memoized:
#: the memo's value is amortizing repeated small/medium launches (sweeps,
#: benchmark repeats), not pinning hundred-MB tile tuples of one-off giant
#: grids for the process lifetime.
_ROW_MAJOR_MEMO_MAX_VOLUME = 65_536


def row_major_tiles(grid: Dim3) -> Tuple[Dim3, ...]:
    """All tiles of ``grid`` in CUDA's row-major block enumeration order.

    ``row_major_tiles(grid)[i] == delinearize(i, grid)`` for every dispatch
    index; the memo exists because the default enumeration is a pure
    function of the grid, so the simulator's dispatch loop can index a
    shared tuple instead of constructing (and re-validating) one
    :class:`~repro.common.dim3.Dim3` per dispatched block.  Custom tile
    orders (arbitrary callables) are not memoized, and grids above
    :data:`_ROW_MAJOR_MEMO_MAX_VOLUME` blocks are enumerated per call so
    the process-lifetime cache stays small.
    """
    if grid.volume > _ROW_MAJOR_MEMO_MAX_VOLUME:
        return tuple(delinearize(index, grid) for index in range(grid.volume))
    return _row_major_tiles_memo(grid)


@lru_cache(maxsize=256)
def _row_major_tiles_memo(grid: Dim3) -> Tuple[Dim3, ...]:
    return tuple(delinearize(index, grid) for index in range(grid.volume))


@dataclass
class KernelLaunch:
    """Everything the simulator needs to execute one kernel.

    ``program_builder`` is called lazily, once per thread block, when the
    block is dispatched onto an SM; this keeps the memory footprint of
    simulating kernels with hundreds of blocks small and lets the builder
    capture the block's assigned tile (which depends on the tile order).
    """

    name: str
    grid: Dim3
    program_builder: ProgramBuilder
    #: Resident thread blocks per SM for this kernel.
    occupancy: int = 1
    stream: Stream = DEFAULT_STREAM
    #: Maps a block's dispatch-counter value to the tile it processes.  The
    #: default is CUDA's row-major block enumeration; cuSync installs custom
    #: orders here (Section III-C).
    tile_order: Optional[TileOrderFn] = None
    #: Posts applied when the first block of this kernel starts executing —
    #: models ``stage.start()`` releasing the consumer's wait-kernel.
    on_first_block_start: List[SemPost] = field(default_factory=list)
    #: Extra host-side delay before this launch is issued, in microseconds.
    issue_delay_us: float = 0.0
    #: Free-form metadata propagated into the execution trace.
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive("occupancy", self.occupancy)
        check_non_negative("issue_delay_us", self.issue_delay_us)
        if self.grid.volume == 0:
            raise ValueError(f"kernel '{self.name}' launched with an empty grid {self.grid}")

    @property
    def num_blocks(self) -> int:
        """Total number of thread blocks in the launch."""
        return self.grid.volume

    def tile_for_dispatch(self, dispatch_index: int) -> Dim3:
        """Tile processed by the ``dispatch_index``-th block to start."""
        if self.tile_order is not None:
            return self.tile_order(dispatch_index)
        return delinearize(dispatch_index, self.grid)

    def build_program(self, tile: Dim3) -> ThreadBlockProgram:
        """Build the program for the thread block assigned to ``tile``."""
        program = self.program_builder(tile)
        if not isinstance(program, ThreadBlockProgram):
            raise TypeError(
                f"program_builder of kernel '{self.name}' returned "
                f"{type(program).__name__}, expected ThreadBlockProgram"
            )
        return program


def simple_kernel(
    name: str,
    grid: Dim3,
    block_duration_us: float,
    occupancy: int = 1,
    stream: Stream = DEFAULT_STREAM,
    posts_per_block: Optional[Callable[[Dim3], Sequence[SemPost]]] = None,
    waits_per_block: Optional[Callable[[Dim3], Sequence[SemWait]]] = None,
) -> KernelLaunch:
    """Build a kernel whose blocks all run one segment of fixed duration.

    This helper exists mainly for tests and micro-benchmarks (e.g. the
    synchronization-overhead study of Section V-D uses a pair of copy
    kernels, each of which is a single-segment block).  The per-block
    programs are tiny and the grids these helpers use are small, so every
    program is built *eagerly* here — the wait/post callables run once per
    tile at construction time — and the launch's ``program_builder`` is a
    dictionary lookup.  Benchmarks that time ``GpuSimulator.run`` on
    simple kernels therefore measure the simulator, not the harness's
    program allocation.
    """
    programs: dict = {}
    for tile in row_major_tiles(grid):
        waits = list(waits_per_block(tile)) if waits_per_block is not None else []
        posts = list(posts_per_block(tile)) if posts_per_block is not None else []
        segment = Segment(label="body", waits=waits, duration_us=block_duration_us, posts=posts)
        programs[tile] = ThreadBlockProgram(tile=tile, segments=[segment])

    return KernelLaunch(
        name=name,
        grid=grid,
        program_builder=programs.__getitem__,
        occupancy=occupancy,
        stream=stream,
    )
