"""Simulated GPU global memory: tensors, semaphore arrays and atomics.

cuSync's synchronization state lives in GPU global memory: an array of
integer semaphores that producer thread blocks increment with ``atomicAdd``
and consumer thread blocks poll.  :class:`GlobalMemory` models that state
plus two facilities the reproduction needs on top:

* optional *functional* tensors (numpy arrays) so kernels can compute real
  values and tests can check them against references;
* per-tile write tracking, so the simulator can detect a data race — a
  consumer reading a tile the producer has not yet written — which is the
  correctness property the paper's wait/post protocol guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.common.validation import check_non_negative, check_positive
from repro.errors import DataRaceError, SimulationError

#: Shared immutable empty set used as the miss default in tile lookups, so
#: the hot ``tile_written`` / ``written_tiles`` paths never allocate.
_EMPTY_TILE_SET: frozenset = frozenset()


def _raise_semaphore_index_error(name: str, index: int, size: int) -> None:
    raise IndexError(
        f"semaphore index {index} out of range for array '{name}' of size {size}"
    )


@dataclass
class SemaphoreArray:
    """An array of integer semaphores stored in simulated global memory."""

    name: str
    size: int
    values: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive("size", self.size)
        if not self.values:
            self.values = [0] * self.size

    def read(self, index: int) -> int:
        """Return the current value of semaphore ``index``."""
        self._check_index(index)
        return self.values[index]

    def atomic_add(self, index: int, increment: int = 1) -> int:
        """Atomically add ``increment`` and return the *new* value."""
        self._check_index(index)
        self.values[index] += increment
        return self.values[index]

    def reset(self) -> None:
        """Reset all semaphores to zero (reused between kernel invocations).

        Resets in place so that direct references to ``values`` (the
        :class:`GlobalMemory` fast-read index) stay valid.
        """
        self.values[:] = [0] * self.size

    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.size):
            _raise_semaphore_index_error(self.name, index, self.size)


class GlobalMemory:
    """The device's global memory as seen by the simulator.

    Three kinds of state are tracked:

    ``semaphores``
        Named :class:`SemaphoreArray` objects allocated by cuSync stages.
    ``tensors``
        Optional numpy arrays for functional simulation.  Timing-only runs
        never allocate these, so simulating GPT-3-sized problems stays cheap.
    ``written tiles``
        For every named tensor, the set of tile keys whose producer has
        posted.  Functional kernels mark writes and verify reads, turning a
        broken synchronization policy into a :class:`DataRaceError` instead
        of silently wrong data.
    """

    def __init__(self) -> None:
        self._semaphores: Dict[str, SemaphoreArray] = {}
        #: Direct name → values-list index for the hot poll/post paths.  The
        #: lists are the same objects held by the :class:`SemaphoreArray`
        #: instances (which mutate them only in place), so a single dict
        #: lookup replaces the array-object indirection on every read.
        self._semaphore_values: Dict[str, List[int]] = {}
        self._tensors: Dict[str, np.ndarray] = {}
        self._written_tiles: Dict[str, Set[Hashable]] = {}
        #: Total number of atomic operations performed, for overhead studies.
        self.atomic_operations: int = 0
        #: Total number of semaphore polls performed.
        self.semaphore_reads: int = 0

    # ------------------------------------------------------------------
    # Semaphores
    # ------------------------------------------------------------------
    def alloc_semaphores(self, name: str, size: int, initial: int = 0) -> SemaphoreArray:
        """Allocate (or reallocate) a named semaphore array.

        Re-allocating a name at its existing size re-initializes the array
        in place — the backing value list stays the same object, so direct
        references held by fast paths (see :meth:`semaphore_backing_map`)
        survive the warmup/measure re-allocation cycle of benchmark runs.
        """
        check_non_negative("initial", initial)
        existing = self._semaphores.get(name)
        if existing is not None and existing.size == size:
            existing.values[:] = [initial] * size
            return existing
        array = SemaphoreArray(name=name, size=size, values=[initial] * size)
        self._semaphores[name] = array
        self._semaphore_values[name] = array.values
        return array

    def semaphores(self, name: str) -> SemaphoreArray:
        """Return the semaphore array called ``name``."""
        try:
            return self._semaphores[name]
        except KeyError:
            raise SimulationError(f"semaphore array '{name}' was never allocated") from None

    def has_semaphores(self, name: str) -> bool:
        return name in self._semaphores

    def semaphore_backing(self, name: str) -> List[int]:
        """The raw value list backing one semaphore array.

        The list is the live storage (arrays mutate it only in place), so
        hot paths may hold it across an entire simulation run and index it
        directly instead of going through :meth:`semaphore_value` per probe.
        Callers bypassing the accessors own the bounds checking and must
        fold their poll/atomic counts back into :attr:`semaphore_reads` /
        :attr:`atomic_operations` if they want the statistics to persist.
        """
        try:
            return self._semaphore_values[name]
        except KeyError:
            raise SimulationError(f"semaphore array '{name}' was never allocated") from None

    def semaphore_backing_map(self) -> Dict[str, List[int]]:
        """A snapshot dict of every array's raw backing list (see above)."""
        return dict(self._semaphore_values)

    def semaphore_value(self, name: str, index: int) -> int:
        """Read one semaphore, counting the poll for overhead statistics."""
        self.semaphore_reads += 1
        try:
            values = self._semaphore_values[name]
        except KeyError:
            raise SimulationError(f"semaphore array '{name}' was never allocated") from None
        if 0 <= index < len(values):
            return values[index]
        _raise_semaphore_index_error(name, index, len(values))

    def atomic_add(self, name: str, index: int, increment: int = 1) -> int:
        """Atomic add on one semaphore, counting the atomic operation."""
        self.atomic_operations += 1
        try:
            values = self._semaphore_values[name]
        except KeyError:
            raise SimulationError(f"semaphore array '{name}' was never allocated") from None
        if 0 <= index < len(values):
            values[index] += increment
            return values[index]
        _raise_semaphore_index_error(name, index, len(values))

    # ------------------------------------------------------------------
    # Tensors (functional mode)
    # ------------------------------------------------------------------
    def store_tensor(self, name: str, array: np.ndarray) -> None:
        """Place a numpy array in global memory under ``name``."""
        self._tensors[name] = array
        self._written_tiles.setdefault(name, set())

    def tensor(self, name: str) -> np.ndarray:
        """Return the tensor called ``name``."""
        try:
            return self._tensors[name]
        except KeyError:
            raise SimulationError(f"tensor '{name}' was never stored in global memory") from None

    def has_tensor(self, name: str) -> bool:
        return name in self._tensors

    def tensor_names(self) -> Iterable[str]:
        return self._tensors.keys()

    # ------------------------------------------------------------------
    # Data-race tracking
    # ------------------------------------------------------------------
    def mark_tile_written(self, tensor_name: str, tile_key: Hashable) -> None:
        """Record that the producer finished writing ``tile_key`` of a tensor."""
        self._written_tiles.setdefault(tensor_name, set()).add(tile_key)

    def tile_written(self, tensor_name: str, tile_key: Hashable) -> bool:
        """Whether ``tile_key`` of a tensor has been written."""
        return tile_key in self._written_tiles.get(tensor_name, _EMPTY_TILE_SET)

    def written_tiles(self, tensor_name: str) -> Set[Hashable]:
        """All tile keys of a tensor that have been written so far."""
        return set(self._written_tiles.get(tensor_name, _EMPTY_TILE_SET))

    def check_tile_read(
        self, tensor_name: str, tile_key: Hashable, reader: str, tracked_tensors: Optional[Set[str]] = None
    ) -> None:
        """Raise :class:`DataRaceError` if a tracked tile is read before written.

        Only tensors listed in ``tracked_tensors`` (the outputs of producer
        kernels) are checked; kernel inputs that exist before the pipeline
        starts (weights, activations) are always considered available.
        """
        if tracked_tensors is not None and tensor_name not in tracked_tensors:
            return
        if tensor_name not in self._written_tiles:
            return
        if tile_key not in self._written_tiles[tensor_name]:
            raise DataRaceError(
                f"{reader} read tile {tile_key} of tensor '{tensor_name}' "
                "before its producer posted it"
            )

    # ------------------------------------------------------------------
    # Statistics / reset
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        self.atomic_operations = 0
        self.semaphore_reads = 0

    def snapshot_semaphores(self) -> Dict[str, Tuple[int, ...]]:
        """Return a copy of all semaphore values (useful in tests)."""
        return {name: tuple(array.values) for name, array in self._semaphores.items()}
