"""Discrete-event simulator for thread-block execution on a GPU.

The simulator executes a list of :class:`~repro.gpu.kernel.KernelLaunch`
objects with the semantics the paper's mechanisms depend on:

* **Host launch order.**  Launches are issued by the host one after another;
  each launch call costs the architecture's kernel-launch latency.  A kernel
  can therefore never start before its issue time, which is what makes
  "overlapping kernel invocations" (Section V-E.1) measurable.
* **Stream ordering.**  A kernel becomes *eligible* only when every earlier
  kernel on the same stream has completed all of its thread blocks.  Running
  two dependent kernels on the same stream therefore reproduces the
  StreamSync baseline exactly.
* **Launch-order block scheduling.**  When SM slots are free, pending thread
  blocks are dispatched from eligible kernels in (stream priority, launch
  order) order — the behaviour of CUDA on Volta/Ampere that the wait-kernel
  mechanism relies on (Section III-B).
* **Occupancy-limited SM slots.**  A thread block of a kernel with occupancy
  *k* consumes ``1/k`` of an SM; blocks of different kernels may co-reside
  if capacity allows.  Waves emerge from this capacity constraint.
* **Busy-waiting blocks hold their slots.**  A block whose segment waits on
  an unsatisfied semaphore stays resident, exactly like a spinning CUDA
  thread block.  If every resident block is waiting and nothing can post,
  the simulator raises :class:`~repro.errors.DeadlockError` — the failure
  mode the paper's wait-kernel prevents.

The simulator is deterministic: identical inputs produce identical traces.

Hot-path structure (the invariants the fast paths preserve exactly):

* **Integer SM capacity.**  Free SM capacity is tracked in integer units of
  ``1/lcm(occupancies)`` of an SM, so capacity arithmetic is exact and the
  "emptiest SM first, lowest id on ties" placement rule reduces to an exact
  max-heap pop instead of an O(num_sms) epsilon-compare scan.
* **Incremental dispatch.**  Eligible launches with pending blocks live in
  a list kept sorted by (stream priority, launch index); a dispatch pass
  runs only when an SM slot was freed or a launch became eligible since the
  previous pass — any other event cannot change the placement outcome.
* **Event coalescing.**  Events within ``_EPSILON`` of the current time are
  drained before dispatching, so a whole wave frees its slots before the
  next wave is placed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from bisect import insort
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.common.dim3 import Dim3
from repro.errors import DeadlockError, SimulationError
from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.gpu.kernel import KernelLaunch, Segment, ThreadBlockProgram
from repro.gpu.memory import GlobalMemory
from repro.gpu.trace import (
    BlockRecord,
    ExecutionTrace,
    KernelStats,
    analytic_utilization,
    wave_count,
)

_EPSILON = 1e-9


@dataclass(slots=True)
class _LaunchState:
    """Mutable bookkeeping for one kernel launch during simulation."""

    launch: KernelLaunch
    launch_index: int
    issue_time_us: float
    eligible: bool = False
    dispatch_counter: int = 0
    completed_blocks: int = 0
    started: bool = False
    #: Dispatch ordering key: (stream priority, launch index).
    sort_key: Tuple[int, int] = (0, 0)
    #: SM capacity one block consumes, in integer capacity units.
    need_units: int = 0

    @property
    def pending_blocks(self) -> int:
        return self.launch.num_blocks - self.dispatch_counter

    @property
    def finished(self) -> bool:
        return self.completed_blocks >= self.launch.num_blocks


@dataclass(slots=True)
class _BlockState:
    """Mutable bookkeeping for one resident thread block."""

    launch_state: _LaunchState
    tile: Dim3
    program: ThreadBlockProgram
    dispatch_index: int
    sm_id: int
    dispatch_time_us: float
    #: Deterministic duration multiplier modelling block-to-block variation.
    duration_factor: float = 1.0
    segment_index: int = 0
    wait_time_us: float = 0.0
    work_time_us: float = 0.0
    waiting_since_us: Optional[float] = None
    #: Semaphore keys this block is currently registered on.
    registered_keys: Set[Tuple[str, int]] = field(default_factory=set)

    @property
    def name(self) -> str:
        return f"{self.launch_state.launch.name}[tile={self.tile}]"


@dataclass
class SimulationResult:
    """Outcome of one simulator run."""

    total_time_us: float
    trace: ExecutionTrace
    memory: GlobalMemory
    #: Host time at which the last kernel launch call returned.
    host_issue_time_us: float

    def kernel_duration_us(self, name: str) -> float:
        """Wall-clock duration of one kernel (first block start → last end)."""
        return self.trace.kernels[name].duration_us

    def kernel_names(self) -> List[str]:
        return [
            stats.name
            for stats in sorted(self.trace.kernels.values(), key=lambda s: s.launch_index)
        ]


class GpuSimulator:
    """Execute kernel launches with discrete-event semantics.

    Parameters
    ----------
    arch:
        The GPU architecture to simulate (defaults to the paper's V100).
    memory:
        Global memory to run against.  Kernels that need pre-existing
        semaphore arrays or tensors expect the caller to populate this; a
        fresh :class:`GlobalMemory` is created when omitted.
    functional:
        When true, segments' ``compute`` callables are executed and tile
        reads of tracked tensors are checked for data races.
    tracked_tensors:
        Names of tensors whose tiles are produced *within* the simulated
        pipeline; reads of these are race-checked in functional mode.
    """

    def __init__(
        self,
        arch: GpuArchitecture = TESLA_V100,
        memory: Optional[GlobalMemory] = None,
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
        tracked_tensors: Optional[Set[str]] = None,
        max_events: int = 50_000_000,
    ) -> None:
        self.arch = arch
        self.memory = memory if memory is not None else GlobalMemory()
        self.cost_model = cost_model if cost_model is not None else CostModel(arch=arch)
        self.functional = functional
        self.tracked_tensors = set(tracked_tensors) if tracked_tensors is not None else None
        self.max_events = max_events

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, launches: Sequence[KernelLaunch]) -> SimulationResult:
        """Simulate the given launches and return the execution trace."""
        if not launches:
            raise SimulationError("no kernels to simulate")

        memory = self.memory
        states = self._prepare_launch_states(launches)
        trace = self._prepare_trace(states)

        # Event queue entries: (time, sequence, kind, payload)
        events: List[Tuple[float, int, str, object]] = []
        sequence = itertools.count()

        def push(time: float, kind: str, payload: object) -> None:
            heapq.heappush(events, (time, next(sequence), kind, payload))

        # Stream bookkeeping: ordered launches per stream.
        stream_queues: Dict[int, List[_LaunchState]] = {}
        for state in states:
            stream_queues.setdefault(state.launch.stream.stream_id, []).append(state)
        stream_positions: Dict[int, int] = {sid: 0 for sid in stream_queues}

        # The head launch of every stream becomes eligible at its issue time.
        for stream_id, queue in stream_queues.items():
            head = queue[0]
            push(head.issue_time_us, "eligible", head)

        # SM capacity tracking in exact integer units: one SM holds
        # ``capacity_unit`` units, a block of occupancy k consumes
        # ``capacity_unit // k``.  Using the lcm of all occupancies keeps the
        # arithmetic exact, which is what lets the emptiest-SM-first rule be
        # answered by a heap instead of an epsilon-tolerant linear scan while
        # producing bit-identical placements.
        capacity_unit = math.lcm(*{state.launch.occupancy for state in states})
        for state in states:
            state.need_units = capacity_unit // state.launch.occupancy
        sm_free: List[int] = [capacity_unit] * self.arch.num_sms
        # Lazy max-heap over (-free, sm_id).  Entries are invalidated by
        # comparing against ``sm_free`` on pop; every capacity change pushes
        # a fresh entry.  Ties on free capacity resolve to the lowest sm_id,
        # exactly like the sequential scan this replaces.
        sm_heap: List[Tuple[int, int]] = [(-capacity_unit, sm_id) for sm_id in range(self.arch.num_sms)]

        def take_sm(need: int) -> Optional[int]:
            """Claim ``need`` units on the emptiest SM, or None if none fits."""
            while sm_heap:
                neg_free, sm_id = sm_heap[0]
                free = -neg_free
                if sm_free[sm_id] != free:
                    heapq.heappop(sm_heap)  # stale entry
                    continue
                if free < need:
                    # The emptiest SM cannot fit the block; nothing can.
                    return None
                heapq.heappop(sm_heap)
                remaining = free - need
                sm_free[sm_id] = remaining
                heapq.heappush(sm_heap, (-remaining, sm_id))
                return sm_id
            return None

        def release_sm(sm_id: int, units: int) -> None:
            freed = min(capacity_unit, sm_free[sm_id] + units)
            sm_free[sm_id] = freed
            heapq.heappush(sm_heap, (-freed, sm_id))

        # Blocks waiting on semaphores: (array, index) -> insertion-ordered
        # registry keyed by id(block).  Registration deduplicates at insert
        # time, and de-registration from other keys is an O(1) pop.
        waiters: Dict[Tuple[str, int], Dict[int, _BlockState]] = {}

        resident_blocks: Dict[int, _BlockState] = {}

        # Eligible launches with pending blocks, sorted by (priority, launch
        # index).  ``dispatch_needed`` records whether anything changed since
        # the previous dispatch pass that could make a new placement possible
        # (an SM slot freed or a launch became eligible); every other event
        # leaves the previous pass's "nothing fits" conclusion intact.
        eligible_order: List[_LaunchState] = []
        dispatch_needed = False

        # Synchronization overheads are pure functions of the architecture;
        # hoist them out of the per-segment scheduling path.
        wait_overhead_us = self.cost_model.wait_overhead_us()
        satisfied_wait_overhead_us = self.cost_model.satisfied_wait_overhead_us()
        post_overhead_us = self.cost_model.post_overhead_us()
        wait_resume_latency_us = self.arch.wait_resume_latency_us

        now = 0.0
        processed = 0
        total_blocks = sum(state.launch.num_blocks for state in states)
        completed_blocks_total = 0

        # --------------------------------------------------------------
        # Inner helpers (closures over the run-local state)
        # --------------------------------------------------------------
        def mark_eligible(state: _LaunchState) -> None:
            nonlocal dispatch_needed
            if not state.eligible:
                state.eligible = True
                insort(eligible_order, state, key=attrgetter("sort_key"))
                dispatch_needed = True

        def stream_advance(stream_id: int, time: float) -> None:
            """Move the stream head forward past completed launches."""
            queue = stream_queues[stream_id]
            position = stream_positions[stream_id]
            dispatch_gap = self.cost_model.kernel_dispatch_gap_us()
            while position < len(queue) and queue[position].finished:
                position += 1
                if position < len(queue):
                    successor = queue[position]
                    # A queued kernel pays a small device-side dispatch gap
                    # after its stream predecessor completes.
                    when = max(time + dispatch_gap, successor.issue_time_us)
                    push(when, "eligible", successor)
            stream_positions[stream_id] = position

        def start_segment(block: _BlockState, time: float) -> None:
            """Begin the block's current segment, waiting if necessary."""
            segment = block.program.segments[block.segment_index]
            if segment.waits:
                unsatisfied = [w for w in segment.waits if not w.satisfied(memory)]
                if unsatisfied:
                    block.waiting_since_us = time
                    registered = block.registered_keys
                    block_id = id(block)
                    for wait in unsatisfied:
                        key = (wait.array, wait.index)
                        if key not in registered:
                            waiters.setdefault(key, {})[block_id] = block
                            registered.add(key)
                    return
            schedule_segment_completion(block, time, resumed=False)

        def schedule_segment_completion(
            block: _BlockState, time: float, resumed: bool, waited_us: float = 0.0
        ) -> None:
            segment = block.program.segments[block.segment_index]
            if resumed:
                overhead = wait_overhead_us * len(segment.waits)
                overhead += wait_resume_latency_us
            elif segment.waits:
                overhead = satisfied_wait_overhead_us * len(segment.waits)
            else:
                overhead = 0.0
            if segment.posts:
                overhead += post_overhead_us * len(segment.posts)
            duration = segment.duration_us * block.duration_factor + overhead
            if waited_us > 0.0 and segment.overlappable_us > 0.0:
                # Work the block performed while busy-waiting (e.g. loading
                # the other operand's tile) does not need to be repeated.
                duration = max(0.0, duration - min(segment.overlappable_us, waited_us))
            block.work_time_us += duration

            if self.functional:
                for access in segment.reads:
                    memory.check_tile_read(
                        access.tensor, access.tile_key, reader=block.name, tracked_tensors=self.tracked_tensors
                    )
            push(time + duration, "segment_done", block)

        def wake_waiters(key: Tuple[str, int], time: float) -> None:
            blocked = waiters.pop(key, None)
            if not blocked:
                return
            still_blocked: Dict[int, _BlockState] = {}
            for block_id, block in blocked.items():
                if block.waiting_since_us is None:
                    # Already resumed via another semaphore this instant.
                    continue
                segment = block.program.segments[block.segment_index]
                if all(w.satisfied(memory) for w in segment.waits):
                    # De-register from any other keys it was parked on.
                    for other in block.registered_keys:
                        if other != key:
                            other_registry = waiters.get(other)
                            if other_registry is not None:
                                other_registry.pop(block_id, None)
                    block.registered_keys.clear()
                    waited = time - block.waiting_since_us
                    block.wait_time_us += waited
                    block.waiting_since_us = None
                    schedule_segment_completion(block, time, resumed=True, waited_us=waited)
                else:
                    still_blocked[block_id] = block
            if still_blocked:
                waiters[key] = still_blocked

        def apply_posts(segment: Segment, time: float) -> None:
            for post in segment.posts:
                post.apply(memory)
                wake_waiters((post.array, post.index), time)

        def finish_block(block: _BlockState, time: float) -> None:
            """Free the block's SM slot and record its trace entry."""
            nonlocal completed_blocks_total, dispatch_needed
            state = block.launch_state
            release_sm(block.sm_id, state.need_units)
            resident_blocks.pop(id(block), None)
            state.completed_blocks += 1
            completed_blocks_total += 1
            dispatch_needed = True

            trace.add_block(
                BlockRecord(
                    kernel=state.launch.name,
                    launch_index=state.launch_index,
                    tile=block.tile,
                    dispatch_index=block.dispatch_index,
                    sm_id=block.sm_id,
                    dispatch_time_us=block.dispatch_time_us,
                    end_time_us=time,
                    wait_time_us=block.wait_time_us,
                    work_time_us=block.work_time_us,
                )
            )

            if state.finished:
                stream_advance(state.launch.stream.stream_id, time)

        def complete_segment(block: _BlockState, time: float) -> None:
            segment = block.program.segments[block.segment_index]
            if self.functional and segment.compute is not None:
                segment.compute(memory)
            for access in segment.writes:
                memory.mark_tile_written(access.tensor, access.tile_key)
            apply_posts(segment, time)

            block.segment_index += 1
            if block.segment_index < len(block.program.segments):
                start_segment(block, time)
            else:
                finish_block(block, time)

        def dispatch(time: float) -> None:
            """Place pending blocks of eligible kernels onto free SM slots."""
            nonlocal dispatch_needed
            if not dispatch_needed:
                return
            dispatch_needed = False
            if not eligible_order:
                return
            exhausted: List[_LaunchState] = []
            for state in eligible_order:
                launch = state.launch
                num_blocks = launch.num_blocks
                need = state.need_units
                while state.dispatch_counter < num_blocks:
                    sm_id = take_sm(need)
                    if sm_id is None:
                        break
                    dispatch_index = state.dispatch_counter
                    state.dispatch_counter = dispatch_index + 1
                    tile = launch.tile_for_dispatch(dispatch_index)
                    program = launch.build_program(tile)
                    block = _BlockState(
                        launch_state=state,
                        tile=tile,
                        program=program,
                        dispatch_index=dispatch_index,
                        sm_id=sm_id,
                        dispatch_time_us=time,
                        duration_factor=self.cost_model.block_duration_factor(
                            launch.name, dispatch_index
                        ),
                    )
                    resident_blocks[id(block)] = block

                    if not state.started:
                        state.started = True
                        for post in launch.on_first_block_start:
                            post.apply(memory)
                            wake_waiters((post.array, post.index), time)

                    if not program.segments:
                        # A degenerate empty program completes immediately
                        # (without mutating the — possibly shared — program).
                        push(time, "block_done_empty", block)
                    else:
                        start_segment(block, time)
                if state.dispatch_counter >= num_blocks:
                    exhausted.append(state)
            for state in exhausted:
                eligible_order.remove(state)

        def handle_event(kind: str, payload: object, time: float) -> None:
            if kind == "segment_done":
                complete_segment(payload, time)  # type: ignore[arg-type]
            elif kind == "eligible":
                mark_eligible(payload)  # type: ignore[arg-type]
            elif kind == "block_done_empty":
                finish_block(payload, time)  # type: ignore[arg-type]
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")

        # --------------------------------------------------------------
        # Main event loop
        # --------------------------------------------------------------
        while events:
            processed += 1
            if processed > self.max_events:
                raise SimulationError(
                    f"simulation exceeded {self.max_events} events; "
                    "likely a livelock in the synchronization policy"
                )
            time, _, kind, payload = heapq.heappop(events)
            if time + _EPSILON < now:
                raise SimulationError("event queue produced a time in the past")
            now = max(now, time)

            handle_event(kind, payload, now)

            # Coalesce events at the same timestamp before dispatching so a
            # whole wave frees its slots before the next wave is placed.
            while events and abs(events[0][0] - now) <= _EPSILON:
                _, _, kind, payload = heapq.heappop(events)
                handle_event(kind, payload, now)

            dispatch(now)

            if not events and completed_blocks_total < total_blocks:
                stuck = [block.name for block in resident_blocks.values()]
                raise DeadlockError(
                    "simulated GPU deadlocked: "
                    f"{total_blocks - completed_blocks_total} blocks cannot make progress "
                    f"({len(stuck)} resident blocks are busy-waiting). "
                    "This is the failure the wait-kernel mechanism prevents (Section III-B).",
                    waiting_blocks=stuck,
                )

        trace.total_time_us = now
        host_issue_time = max(state.issue_time_us for state in states)
        return SimulationResult(
            total_time_us=now,
            trace=trace,
            memory=self.memory,
            host_issue_time_us=host_issue_time,
        )

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _prepare_launch_states(self, launches: Sequence[KernelLaunch]) -> List[_LaunchState]:
        states: List[_LaunchState] = []
        host_time = 0.0
        names_seen: Set[str] = set()
        for index, launch in enumerate(launches):
            if launch.name in names_seen:
                raise SimulationError(
                    f"duplicate kernel name '{launch.name}'; launches must be uniquely named"
                )
            names_seen.add(launch.name)
            host_time += launch.issue_delay_us + self.cost_model.kernel_launch_us()
            states.append(
                _LaunchState(
                    launch=launch,
                    launch_index=index,
                    issue_time_us=host_time,
                    sort_key=(launch.stream.priority, index),
                )
            )
        return states

    def _prepare_trace(self, states: Sequence[_LaunchState]) -> ExecutionTrace:
        trace = ExecutionTrace(arch=self.arch)
        for state in states:
            launch = state.launch
            trace.kernels[launch.name] = KernelStats(
                name=launch.name,
                launch_index=state.launch_index,
                grid=launch.grid,
                occupancy=launch.occupancy,
                num_blocks=launch.num_blocks,
                issue_time_us=state.issue_time_us,
                waves=wave_count(launch.num_blocks, launch.occupancy, self.arch),
                utilization=analytic_utilization(launch.num_blocks, launch.occupancy, self.arch),
            )
        return trace
