"""Discrete-event simulator for thread-block execution on a GPU.

The simulator executes a list of :class:`~repro.gpu.kernel.KernelLaunch`
objects with the semantics the paper's mechanisms depend on:

* **Host launch order.**  Launches are issued by the host one after another;
  each launch call costs the architecture's kernel-launch latency.  A kernel
  can therefore never start before its issue time, which is what makes
  "overlapping kernel invocations" (Section V-E.1) measurable.
* **Stream ordering.**  A kernel becomes *eligible* only when every earlier
  kernel on the same stream has completed all of its thread blocks.  Running
  two dependent kernels on the same stream therefore reproduces the
  StreamSync baseline exactly.
* **Launch-order block scheduling.**  When SM slots are free, pending thread
  blocks are dispatched from eligible kernels in (stream priority, launch
  order) order — the behaviour of CUDA on Volta/Ampere that the wait-kernel
  mechanism relies on (Section III-B).
* **Occupancy-limited SM slots.**  A thread block of a kernel with occupancy
  *k* consumes ``1/k`` of an SM; blocks of different kernels may co-reside
  if capacity allows.  Waves emerge from this capacity constraint.
* **Busy-waiting blocks hold their slots.**  A block whose segment waits on
  an unsatisfied semaphore stays resident, exactly like a spinning CUDA
  thread block.  If every resident block is waiting and nothing can post,
  the simulator raises :class:`~repro.errors.DeadlockError` — the failure
  mode the paper's wait-kernel prevents.

The simulator is deterministic: identical inputs produce identical traces.

Hot-path structure (the invariants the fast paths preserve exactly):

* **Threshold-indexed wakeups.**  CuSync semaphores are *monotone*: their
  values only ever move upward (``atomic_add`` with positive increments)
  within one run.  A blocked wait is therefore a fixed threshold that is
  crossed exactly once, so waiters are indexed per ``(array, index)`` key
  in a min-heap of ``(required value, registration order, block)`` entries
  plus a per-block count of unsatisfied waits.  A post at value ``v`` pops
  only the entries whose thresholds ``v`` crosses — O(log n) per wake —
  and a block resumes when its unsatisfied count reaches zero.  Crossed
  entries resume in registration order, which is exactly the insertion
  order the previous rescan-the-registry implementation woke blocks in,
  so traces are bit-identical.  The rescan implementation survives as the
  ``wake_strategy="rescan"`` reference used by the differential stress
  tests.
* **Pre-resolved semaphore storage.**  Wait checks and posts operate on
  the raw per-array value lists (resolved once per run from
  :meth:`~repro.gpu.memory.GlobalMemory.semaphore_backing_map`), so the
  per-probe ``GlobalMemory`` dict lookup, method dispatch and index
  re-validation are off the hot path; poll/atomic statistics are kept in
  run-local counters and flushed into the memory object once.
* **Structure-of-arrays block records.**  The mutable per-block state
  (segment index, duration factor, SM id, dispatch time, wait/work
  accumulators, unsatisfied-wait count) lives in parallel lists indexed by
  a dense block id assigned at dispatch; events carry the id.  This
  replaces one heap-allocated record per block with flat list slots and
  turns the per-event attribute chasing of ``complete_segment`` /
  ``finish_block`` into constant-index loads.
* **Integer SM capacity.**  Free SM capacity is tracked in integer units of
  ``1/lcm(occupancies)`` of an SM, so capacity arithmetic is exact and the
  "emptiest SM first, lowest id on ties" placement rule reduces to an exact
  max-heap pop instead of an O(num_sms) epsilon-compare scan.  The lazy
  heap is compacted (rebuilt from the live per-SM values) whenever stale
  entries outnumber live ones, so long runs never grow it monotonically;
  compaction only drops entries the pops would have skipped, leaving the
  placement sequence unchanged.
* **Incremental dispatch.**  Eligible launches with pending blocks live in
  a list kept sorted by (stream priority, launch index); a dispatch pass
  runs only when an SM slot was freed or a launch became eligible since the
  previous pass — any other event cannot change the placement outcome.
* **Event coalescing.**  Events within ``_EPSILON`` of the current time are
  drained before dispatching, so a whole wave frees its slots before the
  next wave is placed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from bisect import insort
from dataclasses import dataclass
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.common.dim3 import Dim3
from repro.errors import (
    DeadlockError,
    LivelockError,
    SemaphoreWaiter,
    SimulationError,
)
from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.gpu.kernel import (
    KernelLaunch,
    Segment,
    ThreadBlockProgram,
    row_major_tiles,
)
from repro.gpu.memory import GlobalMemory, _raise_semaphore_index_error
from repro.gpu.trace import (
    ExecutionTrace,
    KernelStats,
    analytic_utilization,
    wave_count,
)
from repro.testing.faults import current_post_fault

_EPSILON = 1e-9

# Event kinds (heap entries are ``(time, sequence, kind, payload)``; the
# unique sequence number means kind/payload never participate in ordering).
_EV_SEGMENT_DONE = 0
_EV_ELIGIBLE = 1
_EV_EMPTY_BLOCK = 2

#: The lazy SM max-heap is rebuilt from the live per-SM free values when it
#: grows past ``max(_SM_HEAP_COMPACT_FACTOR * num_sms, _SM_HEAP_COMPACT_MIN)``
#: entries: at most ``num_sms`` entries can be live, so past the factor the
#: stale entries outnumber them and the pops would mostly skip garbage.
_SM_HEAP_COMPACT_FACTOR = 2
_SM_HEAP_COMPACT_MIN = 64

#: How many blocked-threshold lines the deadlock message embeds; the full
#: list is always available on :attr:`~repro.errors.DeadlockError.waiters`.
_DEADLOCK_REPORT_WAITERS = 16

_entry_order = itemgetter(1)
_entry_key = itemgetter(0)


@dataclass(slots=True)
class _LaunchState:
    """Mutable bookkeeping for one kernel launch during simulation."""

    launch: KernelLaunch
    launch_index: int
    issue_time_us: float
    eligible: bool = False
    dispatch_counter: int = 0
    completed_blocks: int = 0
    started: bool = False
    #: Dispatch ordering key: (stream priority, launch index).
    sort_key: Tuple[int, int] = (0, 0)
    #: SM capacity one block consumes, in integer capacity units.
    need_units: int = 0
    #: ``launch.num_blocks``, cached as a plain int for the hot paths.
    num_blocks: int = 0
    #: ``launch.stream.stream_id``, cached for ``finish_block``.
    stream_id: int = 0
    #: The launch's :class:`~repro.gpu.trace.KernelStats` trace entry.
    stats: Optional[KernelStats] = None
    #: Per-block duration factors (vectorized, computed when first eligible).
    factors: Optional[List[float]] = None
    #: Memoized row-major tile list (``None`` when a custom order is set).
    tiles: Optional[Sequence[Dim3]] = None
    #: Trace-stat accumulators (copied into :attr:`stats` at run end; slot
    #: attributes are cheaper than the stats object's dict attributes on
    #: the per-block completion path, and the accumulation order matches
    #: the per-record updates bit for bit).
    first_dispatch_us: float = math.inf
    end_time_us: float = 0.0
    wait_sum_us: float = 0.0
    work_sum_us: float = 0.0

    @property
    def pending_blocks(self) -> int:
        return self.num_blocks - self.dispatch_counter

    @property
    def finished(self) -> bool:
        return self.completed_blocks >= self.num_blocks


@dataclass
class SimulationResult:
    """Outcome of one simulator run."""

    total_time_us: float
    trace: ExecutionTrace
    memory: GlobalMemory
    #: Host time at which the last kernel launch call returned.
    host_issue_time_us: float

    def kernel_duration_us(self, name: str) -> float:
        """Wall-clock duration of one kernel (first block start → last end)."""
        return self.trace.kernels[name].duration_us

    def kernel_names(self) -> List[str]:
        return [
            stats.name
            for stats in sorted(self.trace.kernels.values(), key=lambda s: s.launch_index)
        ]


class GpuSimulator:
    """Execute kernel launches with discrete-event semantics.

    Parameters
    ----------
    arch:
        The GPU architecture to simulate (defaults to the paper's V100).
    memory:
        Global memory to run against.  Kernels that need pre-existing
        semaphore arrays or tensors expect the caller to populate this; a
        fresh :class:`GlobalMemory` is created when omitted.
    functional:
        When true, segments' ``compute`` callables are executed and tile
        reads of tracked tensors are checked for data races.
    tracked_tensors:
        Names of tensors whose tiles are produced *within* the simulated
        pipeline; reads of these are race-checked in functional mode.
    wake_strategy:
        ``"threshold"`` (the default) wakes blocked waiters through the
        threshold index described in the module docstring; ``"rescan"``
        keeps the brute-force reference behaviour — re-evaluating every
        registered waiter's full wait set on each post — and exists for the
        differential stress tests.  Both produce bit-identical traces; the
        threshold index requires the CuSync invariant that semaphore values
        are monotone non-decreasing within a run.
    max_events / max_sim_time_us:
        Livelock watchdogs.  A run that processes more than ``max_events``
        events, or whose simulated clock passes ``max_sim_time_us``
        (``None`` disables the time guard), raises a structured
        :class:`~repro.errors.LivelockError` recording how far the run got
        — a policy bug that posts in a loop fails fast with diagnostics
        instead of stalling the host.
    """

    def __init__(
        self,
        arch: GpuArchitecture = TESLA_V100,
        memory: Optional[GlobalMemory] = None,
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
        tracked_tensors: Optional[Set[str]] = None,
        max_events: int = 50_000_000,
        max_sim_time_us: Optional[float] = None,
        wake_strategy: str = "threshold",
    ) -> None:
        if wake_strategy not in ("threshold", "rescan"):
            raise SimulationError(
                f"unknown wake strategy {wake_strategy!r}; choose 'threshold' or 'rescan'"
            )
        if max_events <= 0:
            raise SimulationError(f"max_events must be positive, got {max_events}")
        if max_sim_time_us is not None and max_sim_time_us <= 0:
            raise SimulationError(
                f"max_sim_time_us must be positive, got {max_sim_time_us}"
            )
        self.arch = arch
        self.memory = memory if memory is not None else GlobalMemory()
        self.cost_model = cost_model if cost_model is not None else CostModel(arch=arch)
        self.functional = functional
        self.tracked_tensors = set(tracked_tensors) if tracked_tensors is not None else None
        self.max_events = max_events
        self.max_sim_time_us = max_sim_time_us
        self.wake_strategy = wake_strategy
        #: Peak size the lazy SM heap reached in the last run (diagnostic
        #: for the stale-entry compaction; bounded by the compaction limit
        #: plus one wave of pushes).
        self.sm_heap_peak: int = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, launches: Sequence[KernelLaunch]) -> SimulationResult:
        """Simulate the given launches and return the execution trace."""
        if not launches:
            raise SimulationError("no kernels to simulate")

        memory = self.memory
        functional = self.functional
        tracked_tensors = self.tracked_tensors
        rescan = self.wake_strategy == "rescan"
        cost_model = self.cost_model
        # Chaos-test hook: a drop/dup semaphore-post fault armed for this
        # thread's run, or None — the fault-free path costs one extra
        # ``is None`` check per posting segment and is otherwise untouched.
        post_fault = current_post_fault()
        states = self._prepare_launch_states(launches)
        trace = self._prepare_trace(states)
        for state in states:
            state.stats = trace.kernels[state.launch.name]

        # Event queue entries: (time, sequence, kind, payload).
        events: List[Tuple[float, int, int, object]] = []
        sequence = itertools.count()
        heappush = heapq.heappush
        heappop = heapq.heappop
        heapreplace = heapq.heapreplace
        heapify = heapq.heapify

        # Stream bookkeeping: ordered launches per stream.
        stream_queues: Dict[int, List[_LaunchState]] = {}
        for state in states:
            stream_queues.setdefault(state.stream_id, []).append(state)
        stream_positions: Dict[int, int] = {sid: 0 for sid in stream_queues}

        # The head launch of every stream becomes eligible at its issue time.
        for stream_id, queue in stream_queues.items():
            head = queue[0]
            heappush(events, (head.issue_time_us, next(sequence), _EV_ELIGIBLE, head))

        # SM capacity tracking in exact integer units: one SM holds
        # ``capacity_unit`` units, a block of occupancy k consumes
        # ``capacity_unit // k``.  Using the lcm of all occupancies keeps the
        # arithmetic exact, which is what lets the emptiest-SM-first rule be
        # answered by a heap instead of an epsilon-tolerant linear scan while
        # producing bit-identical placements.
        capacity_unit = math.lcm(*{state.launch.occupancy for state in states})
        for state in states:
            state.need_units = capacity_unit // state.launch.occupancy
        num_sms = self.arch.num_sms
        sm_free: List[int] = [capacity_unit] * num_sms
        # Lazy max-heap over (-free, sm_id).  Entries are invalidated by
        # comparing against ``sm_free`` on pop; every capacity change pushes
        # a fresh entry.  Ties on free capacity resolve to the lowest sm_id,
        # exactly like the sequential scan this replaces.  The initial list
        # is sorted, hence already a valid heap.
        sm_heap: List[Tuple[int, int]] = [(-capacity_unit, sm_id) for sm_id in range(num_sms)]
        sm_heap_limit = max(_SM_HEAP_COMPACT_FACTOR * num_sms, _SM_HEAP_COMPACT_MIN)
        sm_heap_peak = num_sms

        # Structure-of-arrays block records, indexed by the dense block id
        # assigned at dispatch.  Slots are pre-allocated (the total block
        # count is known up front) and ids are never reused.
        total_blocks = sum(state.num_blocks for state in states)
        blk_state: List[Optional[_LaunchState]] = [None] * total_blocks
        blk_tile: List[Optional[Dim3]] = [None] * total_blocks
        blk_segments: List[Optional[List[Segment]]] = [None] * total_blocks
        blk_segment_index: List[int] = [0] * total_blocks
        blk_dispatch_index: List[int] = [0] * total_blocks
        blk_sm: List[int] = [0] * total_blocks
        blk_dispatch_time: List[float] = [0.0] * total_blocks
        blk_factor: List[float] = [1.0] * total_blocks
        blk_wait_time: List[float] = [0.0] * total_blocks
        blk_work_time: List[float] = [0.0] * total_blocks
        blk_waiting_since: List[Optional[float]] = [None] * total_blocks
        #: Number of registered-but-uncrossed wait thresholds per block
        #: (threshold strategy: the block resumes when this reaches zero).
        blk_unsatisfied: List[int] = [0] * total_blocks
        #: Keys the block is registered on (rescan reference strategy only).
        blk_registered: List[Optional[Set[Tuple[str, int]]]] = [None] * total_blocks
        # Residency is implicit: a dispatched block's ``blk_state`` slot is
        # cleared when it finishes, so the (cold) deadlock report can scan
        # for still-resident blocks without per-block set maintenance.
        next_block_id = 0

        # Pre-resolved semaphore storage: array name -> raw value list.  The
        # lists are the live backing stores (mutated in place only), so one
        # dict lookup per probe replaces the GlobalMemory accessor chain;
        # poll/atomic statistics accumulate locally and flush once at exit.
        sem_values: Dict[str, List[int]] = memory.semaphore_backing_map()
        sem_values_get = sem_values.get
        polls = 0
        atomics = 0

        def _missing_array(name: str) -> None:
            raise SimulationError(f"semaphore array '{name}' was never allocated")

        # Threshold index: (array, index) -> min-heap of
        # (required value, registration order, block id).  Entries are popped
        # exactly once, when a post crosses their threshold; there are no
        # stale entries to skip or rescans to run.
        waiters: Dict[Tuple[str, int], List[Tuple[int, int, int]]] = {}
        registration = itertools.count()
        # Rescan reference strategy: (array, index) -> insertion-ordered
        # registry of blocked block ids (the pre-threshold-index structure).
        rescan_waiters: Dict[Tuple[str, int], Dict[int, None]] = {}

        # Eligible launches with pending blocks, sorted by (priority, launch
        # index).  ``dispatch_needed`` records whether anything changed since
        # the previous dispatch pass that could make a new placement possible
        # (an SM slot freed or a launch became eligible); every other event
        # leaves the previous pass's "nothing fits" conclusion intact.
        eligible_order: List[_LaunchState] = []
        dispatch_needed = False

        # Synchronization overheads are pure functions of the architecture;
        # hoist them out of the per-segment scheduling path.
        wait_overhead_us = cost_model.wait_overhead_us()
        satisfied_wait_overhead_us = cost_model.satisfied_wait_overhead_us()
        post_overhead_us = cost_model.post_overhead_us()
        wait_resume_latency_us = self.arch.wait_resume_latency_us
        dispatch_gap_us = cost_model.kernel_dispatch_gap_us()

        now = 0.0
        processed = 0
        completed_blocks_total = 0

        # --------------------------------------------------------------
        # Inner helpers (closures over the run-local state)
        # --------------------------------------------------------------
        def block_name(block_id: int) -> str:
            return f"{blk_state[block_id].launch.name}[tile={blk_tile[block_id]}]"

        def mark_eligible(state: _LaunchState) -> None:
            nonlocal dispatch_needed
            if not state.eligible:
                state.eligible = True
                launch = state.launch
                if state.factors is None:
                    state.factors = cost_model.block_duration_factors(
                        launch.name, state.num_blocks
                    )
                    if launch.tile_order is None:
                        state.tiles = row_major_tiles(launch.grid)
                # Eligible entries carry the dispatch loop's hot fields
                # pre-loaded, so a pass costs one tuple unpack per launch
                # instead of eight attribute chases.
                insort(
                    eligible_order,
                    (
                        state.sort_key,
                        state,
                        launch,
                        state.num_blocks,
                        state.need_units,
                        state.tiles,
                        launch.tile_order,
                        launch.program_builder,
                        state.factors,
                    ),
                    key=_entry_key,
                )
                dispatch_needed = True

        def stream_advance(stream_id: int, time: float) -> None:
            """Move the stream head forward past completed launches."""
            queue = stream_queues[stream_id]
            position = stream_positions[stream_id]
            while position < len(queue) and queue[position].finished:
                position += 1
                if position < len(queue):
                    successor = queue[position]
                    # A queued kernel pays a small device-side dispatch gap
                    # after its stream predecessor completes.
                    when = max(time + dispatch_gap_us, successor.issue_time_us)
                    heappush(events, (when, next(sequence), _EV_ELIGIBLE, successor))
            stream_positions[stream_id] = position

        def start_segment(block_id: int, segment: Segment, time: float) -> None:
            """Begin the block's current segment, waiting if necessary.

            ``segment`` is ``blk_segments[block_id][blk_segment_index[block_id]]``,
            passed in because every caller already holds it.
            """
            nonlocal polls
            waits = segment.waits
            if waits:
                # One pass over the waits against the raw value lists;
                # unsatisfied thresholds aggregate per key (max required),
                # preserving first-occurrence key order.
                polls += len(waits)
                unsatisfied: Optional[Dict[Tuple[str, int], int]] = None
                for wait in waits:
                    values = sem_values_get(wait.array)
                    if values is None:
                        _missing_array(wait.array)
                    index = wait.index
                    if index < 0 or index >= len(values):
                        _raise_semaphore_index_error(wait.array, index, len(values))
                    required = wait.required
                    if values[index] < required:
                        key = (wait.array, index)
                        if unsatisfied is None:
                            unsatisfied = {key: required}
                        else:
                            previous = unsatisfied.get(key)
                            if previous is None or required > previous:
                                unsatisfied[key] = required
                if unsatisfied is not None:
                    blk_waiting_since[block_id] = time
                    if rescan:
                        registered = blk_registered[block_id]
                        if registered is None:
                            registered = set()
                            blk_registered[block_id] = registered
                        for key in unsatisfied:
                            if key not in registered:
                                rescan_waiters.setdefault(key, {})[block_id] = None
                                registered.add(key)
                    else:
                        blk_unsatisfied[block_id] = len(unsatisfied)
                        for key, required in unsatisfied.items():
                            entry = (required, next(registration), block_id)
                            heap = waiters.get(key)
                            if heap is None:
                                waiters[key] = [entry]
                            else:
                                heappush(heap, entry)
                    return
                overhead = satisfied_wait_overhead_us * len(waits)
            else:
                overhead = 0.0
            posts = segment.posts
            if posts:
                overhead += post_overhead_us * len(posts)
            duration = segment.duration_us * blk_factor[block_id] + overhead
            blk_work_time[block_id] += duration
            if functional:
                for access in segment.reads:
                    memory.check_tile_read(
                        access.tensor,
                        access.tile_key,
                        reader=block_name(block_id),
                        tracked_tensors=tracked_tensors,
                    )
            heappush(events, (time + duration, next(sequence), _EV_SEGMENT_DONE, block_id))

        def resume_block(block_id: int, time: float) -> None:
            """Schedule the blocked segment's completion after its waits clear."""
            nonlocal polls
            waited = time - blk_waiting_since[block_id]
            blk_wait_time[block_id] += waited
            blk_waiting_since[block_id] = None
            segment = blk_segments[block_id][blk_segment_index[block_id]]
            interval = segment.poll_interval_us
            if interval > 0.0 and waited > 0.0:
                # Busy-wait segments (the wait kernel) park in the wake
                # index like everyone else but charge the polls the real
                # spin loop would have issued while parked: one per wait
                # per elapsed poll interval.  Accounting only — times and
                # wake order are identical with or without the charge.
                polls += len(segment.waits) * int(waited / interval)
            overhead = wait_overhead_us * len(segment.waits) + wait_resume_latency_us
            posts = segment.posts
            if posts:
                overhead += post_overhead_us * len(posts)
            duration = segment.duration_us * blk_factor[block_id] + overhead
            if waited > 0.0 and segment.overlappable_us > 0.0:
                # Work the block performed while busy-waiting (e.g. loading
                # the other operand's tile) does not need to be repeated.
                duration = max(0.0, duration - min(segment.overlappable_us, waited))
            blk_work_time[block_id] += duration
            if functional:
                for access in segment.reads:
                    memory.check_tile_read(
                        access.tensor,
                        access.tile_key,
                        reader=block_name(block_id),
                        tracked_tensors=tracked_tensors,
                    )
            heappush(events, (time + duration, next(sequence), _EV_SEGMENT_DONE, block_id))

        def wake_threshold(key: Tuple[str, int], value: int, time: float) -> None:
            """Pop the waiters whose thresholds ``value`` crossed; resume at zero."""
            heap = waiters.get(key)
            if not heap or heap[0][0] > value:
                return
            first = heappop(heap)
            crossed: Optional[List[Tuple[int, int, int]]] = None
            while heap and heap[0][0] <= value:
                if crossed is None:
                    crossed = [first]
                crossed.append(heappop(heap))
            if not heap:
                del waiters[key]
            if crossed is None:
                block_id = first[2]
                remaining = blk_unsatisfied[block_id] - 1
                blk_unsatisfied[block_id] = remaining
                if remaining == 0:
                    resume_block(block_id, time)
                return
            # Resume in registration order — the insertion order the rescan
            # registry woke blocks in, keeping traces bit-identical.
            crossed.sort(key=_entry_order)
            for _, _, block_id in crossed:
                remaining = blk_unsatisfied[block_id] - 1
                blk_unsatisfied[block_id] = remaining
                if remaining == 0:
                    resume_block(block_id, time)

        def wake_rescan(key: Tuple[str, int], value: int, time: float) -> None:
            """Reference strategy: re-evaluate every waiter registered on ``key``."""
            nonlocal polls
            blocked = rescan_waiters.pop(key, None)
            if not blocked:
                return
            still_blocked: Dict[int, None] = {}
            for block_id in blocked:
                if blk_waiting_since[block_id] is None:
                    # Already resumed via another semaphore this instant.
                    continue
                segment = blk_segments[block_id][blk_segment_index[block_id]]
                satisfied = True
                for wait in segment.waits:
                    polls += 1
                    values = sem_values_get(wait.array)
                    if values is None:
                        _missing_array(wait.array)
                    index = wait.index
                    if index < 0 or index >= len(values):
                        _raise_semaphore_index_error(wait.array, index, len(values))
                    if values[index] < wait.required:
                        satisfied = False
                        break
                if satisfied:
                    # De-register from any other keys it was parked on.
                    registered = blk_registered[block_id]
                    for other in registered:
                        if other != key:
                            other_registry = rescan_waiters.get(other)
                            if other_registry is not None:
                                other_registry.pop(block_id, None)
                    registered.clear()
                    resume_block(block_id, time)
                else:
                    still_blocked[block_id] = None
            if still_blocked:
                rescan_waiters[key] = still_blocked

        wake = wake_rescan if rescan else wake_threshold

        def apply_post(post, time: float) -> None:
            """Apply one semaphore post against the raw storage and wake.

            The caller accounts the atomic operation (batched per segment).
            """
            array = post.array
            values = sem_values_get(array)
            if values is None:
                _missing_array(array)
            index = post.index
            if index < 0 or index >= len(values):
                _raise_semaphore_index_error(array, index, len(values))
            value = values[index] + post.increment
            values[index] = value
            wake((array, index), value, time)

        deferred_blocks_append = trace.deferred_blocks.append

        def finish_block(block_id: int, time: float) -> None:
            """Free the block's SM slot and record its trace row."""
            nonlocal completed_blocks_total, dispatch_needed, sm_heap_peak
            state = blk_state[block_id]
            blk_state[block_id] = None  # no longer resident
            sm_id = blk_sm[block_id]
            freed = sm_free[sm_id] + state.need_units
            if freed > capacity_unit:
                freed = capacity_unit
            sm_free[sm_id] = freed
            heappush(sm_heap, (-freed, sm_id))
            # Stale-entry compaction: rebuild from the live per-SM values
            # once stale entries are guaranteed to outnumber them.  Heapify
            # keeps only the live entries; pops return the same value
            # sequence as the lazy heap (which merely skips the stale
            # entries), so placement is unchanged.
            heap_size = len(sm_heap)
            if heap_size > sm_heap_limit:
                if heap_size > sm_heap_peak:
                    sm_heap_peak = heap_size
                sm_heap[:] = [(-free, sm) for sm, free in enumerate(sm_free)]
                heapify(sm_heap)
            state.completed_blocks += 1
            completed_blocks_total += 1
            dispatch_needed = True

            wait_time = blk_wait_time[block_id]
            work_time = blk_work_time[block_id]
            deferred_blocks_append(
                (
                    state.launch.name,
                    state.launch_index,
                    blk_tile[block_id],
                    blk_dispatch_index[block_id],
                    sm_id,
                    blk_dispatch_time[block_id],
                    time,
                    wait_time,
                    work_time,
                )
            )
            if time > state.end_time_us:
                state.end_time_us = time
            state.wait_sum_us += wait_time
            state.work_sum_us += work_time

            if state.completed_blocks >= state.num_blocks:
                stream_advance(state.stream_id, time)

        def complete_segment(block_id: int, time: float) -> None:
            nonlocal atomics
            segments = blk_segments[block_id]
            segment_index = blk_segment_index[block_id]
            segment = segments[segment_index]
            if functional and segment.compute is not None:
                segment.compute(memory)
            for access in segment.writes:
                memory.mark_tile_written(access.tensor, access.tile_key)
            posts = segment.posts
            if posts:
                atomics += len(posts)
                if post_fault is None:
                    for post in posts:
                        # Inlined apply_post: this is the producer hot path.
                        array = post.array
                        values = sem_values_get(array)
                        if values is None:
                            _missing_array(array)
                        index = post.index
                        if index < 0 or index >= len(values):
                            _raise_semaphore_index_error(array, index, len(values))
                        value = values[index] + post.increment
                        values[index] = value
                        wake((array, index), value, time)
                else:
                    # Fault-injection path: the armed fault may drop or
                    # duplicate exactly one post of the run.
                    for post in posts:
                        action = post_fault.next_action()
                        if action == "drop":
                            continue
                        apply_post(post, time)
                        if action == "dup":
                            atomics += 1
                            apply_post(post, time)

            segment_index += 1
            if segment_index < len(segments):
                blk_segment_index[block_id] = segment_index
                start_segment(block_id, segments[segment_index], time)
            else:
                finish_block(block_id, time)

        def dispatch(time: float) -> None:
            """Place pending blocks of eligible kernels onto free SM slots."""
            nonlocal dispatch_needed, next_block_id, atomics
            dispatch_needed = False
            if not eligible_order:
                return
            exhausted: Optional[list] = None
            for entry in eligible_order:
                (
                    _,
                    state,
                    launch,
                    num_blocks,
                    need,
                    tiles,
                    tile_order,
                    program_builder,
                    factors,
                ) = entry
                dispatch_counter = state.dispatch_counter
                while dispatch_counter < num_blocks:
                    # Inline take_sm: claim ``need`` units on the emptiest SM.
                    sm_id = -1
                    while sm_heap:
                        neg_free, candidate = sm_heap[0]
                        free = -neg_free
                        if sm_free[candidate] != free:
                            heappop(sm_heap)  # stale entry
                            continue
                        if free < need:
                            # The emptiest SM cannot fit the block.
                            break
                        remaining = free - need
                        sm_free[candidate] = remaining
                        heapreplace(sm_heap, (-remaining, candidate))
                        sm_id = candidate
                        break
                    if sm_id < 0:
                        break
                    dispatch_index = dispatch_counter
                    dispatch_counter += 1
                    tile = (
                        tiles[dispatch_index]
                        if tiles is not None
                        else tile_order(dispatch_index)
                    )
                    program = program_builder(tile)
                    block_id = next_block_id
                    next_block_id += 1
                    blk_state[block_id] = state
                    blk_tile[block_id] = tile
                    blk_dispatch_index[block_id] = dispatch_index
                    blk_sm[block_id] = sm_id
                    blk_dispatch_time[block_id] = time
                    blk_factor[block_id] = factors[dispatch_index]

                    if not state.started:
                        state.started = True
                        state.first_dispatch_us = time
                        # Validate the builder's return type once per launch
                        # (the per-block isinstance check was pure overhead).
                        if not isinstance(program, ThreadBlockProgram):
                            raise TypeError(
                                f"program_builder of kernel '{launch.name}' returned "
                                f"{type(program).__name__}, expected ThreadBlockProgram"
                            )
                        first_posts = launch.on_first_block_start
                        if first_posts:
                            atomics += len(first_posts)
                            for post in first_posts:
                                apply_post(post, time)

                    segments = program.segments
                    blk_segments[block_id] = segments
                    if not segments:
                        # A degenerate empty program completes immediately
                        # (without mutating the — possibly shared — program).
                        heappush(events, (time, next(sequence), _EV_EMPTY_BLOCK, block_id))
                    else:
                        start_segment(block_id, segments[0], time)
                state.dispatch_counter = dispatch_counter
                if dispatch_counter >= num_blocks:
                    if exhausted is None:
                        exhausted = [entry]
                    else:
                        exhausted.append(entry)
            if exhausted is not None:
                for entry in exhausted:
                    eligible_order.remove(entry)

        # --------------------------------------------------------------
        # Main event loop
        # --------------------------------------------------------------
        max_events = self.max_events
        max_sim_time_us = self.max_sim_time_us

        def _livelock(guard: str, limit: float) -> LivelockError:
            return LivelockError(
                f"simulation exceeded {guard}={limit:g} "
                f"({processed} events processed, simulated time {now:.3f} us, "
                f"{completed_blocks_total}/{total_blocks} blocks completed); "
                "likely a livelock in the synchronization policy",
                guard=guard,
                events_processed=processed,
                simulated_time_us=now,
                completed_blocks=completed_blocks_total,
                total_blocks=total_blocks,
                limit=limit,
            )

        try:
            while events:
                processed += 1
                if processed > max_events:
                    raise _livelock("max_events", max_events)
                time, _, kind, payload = heappop(events)
                if time + _EPSILON < now:
                    raise SimulationError("event queue produced a time in the past")
                if time > now:
                    now = time
                    if max_sim_time_us is not None and now > max_sim_time_us:
                        raise _livelock("max_sim_time_us", max_sim_time_us)

                if kind == _EV_SEGMENT_DONE:
                    complete_segment(payload, now)
                elif kind == _EV_ELIGIBLE:
                    mark_eligible(payload)
                else:
                    finish_block(payload, now)

                # Coalesce events at the same timestamp before dispatching so
                # a whole wave frees its slots before the next wave is placed.
                # Coalesced events count against the watchdog too: a livelock
                # that spins at one timestamp (e.g. a zero-delay wake loop)
                # must still trip ``max_events``.
                while events and -_EPSILON <= events[0][0] - now <= _EPSILON:
                    processed += 1
                    if processed > max_events:
                        raise _livelock("max_events", max_events)
                    _, _, kind, payload = heappop(events)
                    if kind == _EV_SEGMENT_DONE:
                        complete_segment(payload, now)
                    elif kind == _EV_ELIGIBLE:
                        mark_eligible(payload)
                    else:
                        finish_block(payload, now)

                if dispatch_needed and eligible_order:
                    dispatch(now)

                if not events and completed_blocks_total < total_blocks:
                    stuck_ids = [
                        block_id
                        for block_id in range(next_block_id)
                        if blk_state[block_id] is not None
                    ]
                    stuck = [block_name(block_id) for block_id in stuck_ids]
                    waiter_records, cycle = self._deadlock_forensics(
                        stuck_ids,
                        block_name,
                        blk_segments,
                        blk_segment_index,
                        blk_waiting_since,
                        sem_values_get,
                    )
                    message = (
                        "simulated GPU deadlocked: "
                        f"{total_blocks - completed_blocks_total} blocks cannot make progress "
                        f"({len(stuck)} resident blocks are busy-waiting). "
                        "This is the failure the wait-kernel mechanism prevents (Section III-B)."
                    )
                    if waiter_records:
                        shown = waiter_records[:_DEADLOCK_REPORT_WAITERS]
                        message += " Blocked thresholds:\n  " + "\n  ".join(
                            waiter.describe() for waiter in shown
                        )
                        hidden = len(waiter_records) - len(shown)
                        if hidden:
                            message += f"\n  ... and {hidden} more (see .waiters)"
                    if cycle:
                        message += "\nDependency cycle: " + " -> ".join(cycle + [cycle[0]])
                    raise DeadlockError(
                        message,
                        waiting_blocks=stuck,
                        waiters=waiter_records,
                        cycle=cycle,
                    )
        finally:
            # Flush the run-local statistics into the memory object (the
            # raw-list fast paths bypass the counting accessors).
            memory.semaphore_reads += polls
            memory.atomic_operations += atomics
            if len(sm_heap) > sm_heap_peak:
                sm_heap_peak = len(sm_heap)
            self.sm_heap_peak = sm_heap_peak

        # Copy the per-launch accumulators into the trace statistics (the
        # per-block updates ran on _LaunchState slots; the accumulation
        # order was identical, so the values match the per-record path bit
        # for bit).
        for state in states:
            stats = state.stats
            stats.start_time_us = state.first_dispatch_us
            stats.end_time_us = state.end_time_us
            stats.total_wait_time_us = state.wait_sum_us
            stats.total_work_time_us = state.work_sum_us

        trace.total_time_us = now
        host_issue_time = max(state.issue_time_us for state in states)
        return SimulationResult(
            total_time_us=now,
            trace=trace,
            memory=self.memory,
            host_issue_time_us=host_issue_time,
        )

    # ------------------------------------------------------------------
    # Deadlock forensics (cold path: runs once, after the run is dead)
    # ------------------------------------------------------------------
    @staticmethod
    def _deadlock_forensics(
        stuck_ids,
        block_name,
        blk_segments,
        blk_segment_index,
        blk_waiting_since,
        sem_values_get,
    ) -> Tuple[List[SemaphoreWaiter], Optional[List[str]]]:
        """Build the wait-graph report for a detected deadlock.

        Returns one :class:`~repro.errors.SemaphoreWaiter` per blocked
        threshold (with the semaphore's observed value and nearest-miss
        delta) and, when the blocked blocks wait on posts only *other
        blocked blocks* could still perform, the dependency cycle as a list
        of block names.  Both are deterministic: blocks are visited in
        dispatch order and wait keys in first-occurrence order, so the two
        wake strategies report identical forensics.
        """
        waiter_records: List[SemaphoreWaiter] = []
        blocked_keys: Dict[int, List[Tuple[str, int]]] = {}
        for block_id in stuck_ids:
            if blk_waiting_since[block_id] is None:
                continue  # resident but not parked on a wait (defensive)
            segment = blk_segments[block_id][blk_segment_index[block_id]]
            per_key: Dict[Tuple[str, int], int] = {}
            for wait in segment.waits:
                values = sem_values_get(wait.array)
                if values is None or not (0 <= wait.index < len(values)):
                    continue
                if values[wait.index] < wait.required:
                    key = (wait.array, wait.index)
                    previous = per_key.get(key)
                    if previous is None or wait.required > previous:
                        per_key[key] = wait.required
            name = block_name(block_id)
            for (array, index), required in per_key.items():
                waiter_records.append(
                    SemaphoreWaiter(
                        block=name,
                        array=array,
                        index=index,
                        required=required,
                        observed=sem_values_get(array)[index],
                    )
                )
            blocked_keys[block_id] = list(per_key)

        # Wait-for edges: a blocked block depends on every other blocked
        # block whose *remaining* segments contain a post to one of its
        # blocked keys — the only writers that could still appear.
        posters: Dict[Tuple[str, int], List[int]] = {}
        for block_id in stuck_ids:
            segments = blk_segments[block_id]
            for segment in segments[blk_segment_index[block_id]:]:
                for post in segment.posts:
                    posters.setdefault((post.array, post.index), []).append(block_id)
        edges: Dict[int, List[int]] = {}
        for block_id, keys in blocked_keys.items():
            targets: List[int] = []
            for key in keys:
                for poster in posters.get(key, ()):
                    if poster != block_id and poster in blocked_keys:
                        targets.append(poster)
            edges[block_id] = targets

        cycle_ids = GpuSimulator._find_wait_cycle(edges)
        cycle = [block_name(block_id) for block_id in cycle_ids] if cycle_ids else None
        return waiter_records, cycle

    @staticmethod
    def _find_wait_cycle(edges: Dict[int, List[int]]) -> Optional[List[int]]:
        """First dependency cycle of the wait-for graph, via iterative DFS."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in edges}
        parent: Dict[int, int] = {}
        for start in edges:
            if color[start] != WHITE:
                continue
            color[start] = GRAY
            stack = [(start, iter(edges[start]))]
            while stack:
                node, successors = stack[-1]
                advanced = False
                for target in successors:
                    if target not in color:
                        continue
                    if color[target] == WHITE:
                        color[target] = GRAY
                        parent[target] = node
                        stack.append((target, iter(edges[target])))
                        advanced = True
                        break
                    if color[target] == GRAY:
                        cycle = [node]
                        current = node
                        while current != target:
                            current = parent[current]
                            cycle.append(current)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _prepare_launch_states(self, launches: Sequence[KernelLaunch]) -> List[_LaunchState]:
        states: List[_LaunchState] = []
        host_time = 0.0
        names_seen: Set[str] = set()
        launch_cost = self.cost_model.kernel_launch_us()
        for index, launch in enumerate(launches):
            if launch.name in names_seen:
                raise SimulationError(
                    f"duplicate kernel name '{launch.name}'; launches must be uniquely named"
                )
            names_seen.add(launch.name)
            host_time += launch.issue_delay_us + launch_cost
            states.append(
                _LaunchState(
                    launch=launch,
                    launch_index=index,
                    issue_time_us=host_time,
                    sort_key=(launch.stream.priority, index),
                    num_blocks=launch.num_blocks,
                    stream_id=launch.stream.stream_id,
                )
            )
        return states

    def _prepare_trace(self, states: Sequence[_LaunchState]) -> ExecutionTrace:
        trace = ExecutionTrace(arch=self.arch)
        for state in states:
            launch = state.launch
            trace.kernels[launch.name] = KernelStats(
                name=launch.name,
                launch_index=state.launch_index,
                grid=launch.grid,
                occupancy=launch.occupancy,
                num_blocks=launch.num_blocks,
                issue_time_us=state.issue_time_us,
                waves=wave_count(launch.num_blocks, launch.occupancy, self.arch),
                utilization=analytic_utilization(launch.num_blocks, launch.occupancy, self.arch),
            )
        return trace
