"""CUDA stream model.

A CUDA stream is an ordered queue of operations: two kernels launched on the
same stream execute one after the other (the consumer kernel cannot start
until every thread block of the producer has finished).  This is exactly the
*stream synchronization* baseline the paper improves upon; cuSync instead
launches dependent kernels on different streams so their thread blocks can
interleave.

The simulator only needs two properties of streams: the per-stream ordering
constraint and the priority used to order kernel dispatch when several
streams have eligible kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Iterator, List, Optional

_stream_ids = count()


@dataclass(frozen=True)
class Stream:
    """A CUDA stream: an identity plus a scheduling priority.

    Lower ``priority`` values mean higher scheduling priority, matching
    CUDA where ``cudaStreamCreateWithPriority`` accepts negative values for
    high-priority streams.
    """

    stream_id: int = field(default_factory=lambda: next(_stream_ids))
    priority: int = 0
    name: Optional[str] = None

    def __str__(self) -> str:
        label = self.name if self.name is not None else f"stream{self.stream_id}"
        return f"{label}(prio={self.priority})"


#: The default stream used when the caller does not create explicit streams,
#: mirroring CUDA's stream 0.
DEFAULT_STREAM = Stream(priority=0, name="default")


class StreamManager:
    """Creates streams and remembers the per-stream kernel order.

    The executor components use this to assign streams to kernels: the
    StreamSync baseline puts every kernel on one stream, cuSync creates one
    stream per stage.
    """

    def __init__(self) -> None:
        self._streams: List[Stream] = []
        self._kernel_order: Dict[int, List[str]] = {}

    def create(self, priority: int = 0, name: Optional[str] = None) -> Stream:
        """Create a new stream with the given priority."""
        stream = Stream(priority=priority, name=name)
        self._streams.append(stream)
        self._kernel_order[stream.stream_id] = []
        return stream

    def record_launch(self, stream: Stream, kernel_name: str) -> None:
        """Remember that ``kernel_name`` was launched on ``stream``."""
        self._kernel_order.setdefault(stream.stream_id, []).append(kernel_name)

    def kernels_on(self, stream: Stream) -> List[str]:
        """Names of the kernels launched on ``stream`` in launch order."""
        return list(self._kernel_order.get(stream.stream_id, []))

    def __iter__(self) -> Iterator[Stream]:
        return iter(self._streams)

    def __len__(self) -> int:
        return len(self._streams)
