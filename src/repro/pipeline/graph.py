"""The declarative pipeline description: one immutable :class:`PipelineGraph`.

A graph is the *context-independent* half of a synchronized pipeline: named
stages wrapping :class:`~repro.kernels.base.TiledKernel` objects, and typed
producer → consumer edges carrying the tensor (and optional
:data:`~repro.cusync.custage.RangeMap`) the consumer reads.  Everything that
depends on a particular run — the synchronization scheme, the policy family,
the architecture, semaphores, stream assignment — lives in the executors
(:mod:`repro.pipeline.executors`) and is bound per execution, so one graph
built once can be run many times (and swept concurrently) without ever
rebuilding its kernels.

Graphs are validated at construction: duplicate stage names, dangling
edges, edges whose tensor the producer does not write, duplicate
``(consumer, tensor)`` dependencies and cycles all raise
:class:`~repro.errors.GraphValidationError` immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from typing import Union

from repro.errors import GraphValidationError
from repro.cusync.custage import RangeMap
from repro.cusync.optimizations import OptimizationFlags
from repro.cusync.policies import PolicySpec, SyncPolicy
from repro.cusync.tile_orders import TileOrder
from repro.kernels.base import TiledKernel


@dataclass(frozen=True)
class StageSpec:
    """One named stage of a pipeline graph.

    The kernel describes *what* is computed; the optional ``policy`` /
    ``order`` / ``optimizations`` fields override the run-time selection for
    this stage only (the common case leaves them ``None`` and picks a policy
    family at :func:`repro.pipeline.run` time).
    """

    name: str
    kernel: TiledKernel
    #: When run under ``StridedTileSync``, this stage's semaphores group
    #: ``strided_groups`` column tiles together (the Q/K/V slices of a fused
    #: attention GeMM).
    strided_groups: Optional[int] = None
    #: Per-stage policy override (wins over the run's policy family).
    policy: Optional[SyncPolicy] = None
    #: Per-stage tile-order override.
    order: Optional[TileOrder] = None
    #: Per-stage optimization-flag override (wins over the run's flags).
    optimizations: Optional[OptimizationFlags] = None


@dataclass(frozen=True)
class Edge:
    """A typed producer → consumer dependence for one tensor.

    ``range_map`` translates element coordinates of the consumer's read into
    coordinates of the producer's output; when absent, ``tensor`` must be
    the tensor the producer kernel writes.

    ``policy`` pins the synchronization policy of *this edge only* — a
    family name, a :class:`~repro.cusync.policies.PolicySpec` or a ready
    :class:`~repro.cusync.policies.SyncPolicy` — overriding both the
    run-time policy selection and the producer stage's default, so sibling
    edges of one graph can synchronize under different policies in the same
    execution.  Left ``None``, the run's
    :class:`~repro.cusync.policies.PolicyAssignment` (or the producer's
    stage policy) decides.
    """

    producer: str
    consumer: str
    tensor: str
    range_map: Optional[RangeMap] = field(default=None, compare=False)
    policy: Optional[Union[str, PolicySpec, SyncPolicy]] = None


class PipelineGraph:
    """An immutable DAG of dependent kernels, reusable across executions.

    Typical use (the paper's two-GeMM MLP)::

        graph = PipelineGraph(
            stages=[StageSpec("gemm1", producer), StageSpec("gemm2", consumer)],
            edges=[Edge("gemm1", "gemm2", tensor="XW1")],
        )
        result = repro.pipeline.run(graph, scheme="cusync", policy="TileSync")

    The same graph object can then be run under a different scheme, policy
    or architecture — executors never mutate the graph and never rebuild its
    kernels.
    """

    def __init__(
        self,
        stages: Sequence[StageSpec],
        edges: Sequence[Edge] = (),
        name: Optional[str] = None,
    ) -> None:
        self._name: Optional[str] = name
        self._stages: Tuple[StageSpec, ...] = tuple(stages)
        self._edges: Tuple[Edge, ...] = tuple(edges)
        if not self._stages:
            raise GraphValidationError("a PipelineGraph needs at least one stage")
        self._by_name: Dict[str, StageSpec] = {}
        self._validate_stages()
        # _validate_edges populates these adjacency maps.
        self._in_edges: Dict[str, Tuple[Edge, ...]]
        self._out_edges: Dict[str, Tuple[Edge, ...]]
        self._validate_edges()
        self._topological: Tuple[StageSpec, ...] = self._topological_sort()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate_stages(self) -> None:
        kernel_ids: Dict[int, str] = {}
        for stage in self._stages:
            if not stage.name:
                raise GraphValidationError("stage names must be non-empty")
            if stage.name in self._by_name:
                raise GraphValidationError(f"duplicate stage name {stage.name!r}")
            owner = kernel_ids.get(id(stage.kernel))
            if owner is not None:
                raise GraphValidationError(
                    f"stages {owner!r} and {stage.name!r} share one kernel object; "
                    "every stage needs its own kernel (synchronization state is "
                    "bound per stage at execution time)"
                )
            kernel_ids[id(stage.kernel)] = stage.name
            self._by_name[stage.name] = stage

    def _validate_edges(self) -> None:
        seen: set = set()
        in_edges: Dict[str, List[Edge]] = {name: [] for name in self._by_name}
        out_edges: Dict[str, List[Edge]] = {name: [] for name in self._by_name}
        for edge in self._edges:
            for endpoint in (edge.producer, edge.consumer):
                if endpoint not in self._by_name:
                    raise GraphValidationError(
                        f"dangling edge {edge.producer!r} -> {edge.consumer!r}: "
                        f"stage {endpoint!r} is not part of the graph"
                    )
            if edge.producer == edge.consumer:
                raise GraphValidationError(
                    f"stage {edge.producer!r} cannot depend on itself (tensor {edge.tensor!r})"
                )
            key = (edge.consumer, edge.tensor)
            if key in seen:
                raise GraphValidationError(
                    f"stage {edge.consumer!r} declares two dependencies for tensor {edge.tensor!r}"
                )
            seen.add(key)
            if edge.range_map is None:
                produced = self._produced_tensor(self._by_name[edge.producer])
                if produced is not None and edge.tensor != produced:
                    raise GraphValidationError(
                        f"edge {edge.producer!r} -> {edge.consumer!r} reads tensor "
                        f"{edge.tensor!r}, but stage {edge.producer!r} writes "
                        f"{produced!r} (add a range_map to read an aliased slice)"
                    )
            in_edges[edge.consumer].append(edge)
            out_edges[edge.producer].append(edge)
        self._in_edges = {name: tuple(edges) for name, edges in in_edges.items()}
        self._out_edges = {name: tuple(edges) for name, edges in out_edges.items()}

    @staticmethod
    def _produced_tensor(stage: StageSpec) -> Optional[str]:
        try:
            return stage.kernel.stage_geometry().output
        except NotImplementedError:
            return None

    def _topological_sort(self) -> Tuple[StageSpec, ...]:
        """Stable topological order (declaration order among ready stages)."""
        position = {stage.name: index for index, stage in enumerate(self._stages)}
        remaining_deps = {
            stage.name: {edge.producer for edge in self._in_edges[stage.name]}
            for stage in self._stages
        }
        ready = sorted(
            (name for name, deps in remaining_deps.items() if not deps),
            key=position.__getitem__,
        )
        queued = set(ready)
        ordered: List[str] = []
        while ready:
            name = ready.pop(0)
            ordered.append(name)
            for consumer in {edge.consumer for edge in self._out_edges[name]}:
                deps = remaining_deps[consumer]
                deps.discard(name)
                if not deps and consumer not in queued:
                    queued.add(consumer)
                    ready.append(consumer)
            ready.sort(key=position.__getitem__)
        if len(ordered) != len(self._stages):
            stuck = sorted(set(self._by_name) - set(ordered))
            raise GraphValidationError(
                f"dependency cycle involving stages {', '.join(repr(s) for s in stuck)}"
            )
        return tuple(self._by_name[name] for name in ordered)

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------
    @property
    def name(self) -> Optional[str]:
        """Optional graph label, used to attribute multi-graph sweep results."""
        return self._name

    def renamed(self, name: Optional[str]) -> "PipelineGraph":
        """A copy of this graph carrying ``name`` as its label.

        The name is a reporting label, not structure: the copy has the
        same structural fingerprint as the original and therefore shares
        sweep-cache and result-store entries with it.  The copy *shares*
        the original's stage and kernel objects, so treat it as a
        build-then-rename replacement for the original — do not sweep the
        original and the renamed copy as distinct entries of one
        ``mode="thread"`` work list (per-graph locks key on object
        identity, so the two would re-bind the same kernels concurrently).
        """
        return PipelineGraph(stages=self._stages, edges=self._edges, name=name)

    @property
    def stages(self) -> Tuple[StageSpec, ...]:
        """Stages in declaration order."""
        return self._stages

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return self._edges

    @property
    def topological_order(self) -> Tuple[StageSpec, ...]:
        """Stages in producer-before-consumer (launch) order."""
        return self._topological

    @property
    def stage_names(self) -> Tuple[str, ...]:
        return tuple(stage.name for stage in self._topological)

    @property
    def kernels(self) -> Tuple[TiledKernel, ...]:
        """Kernels in launch order."""
        return tuple(stage.kernel for stage in self._topological)

    def stage(self, name: str) -> StageSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise GraphValidationError(f"graph has no stage named {name!r}") from None

    def in_edges(self, name: str) -> Tuple[Edge, ...]:
        """Edges into ``name`` (its dependencies), in declaration order."""
        self.stage(name)
        return self._in_edges[name]

    def out_edges(self, name: str) -> Tuple[Edge, ...]:
        """Edges out of ``name`` (its consumers), in declaration order."""
        self.stage(name)
        return self._out_edges[name]

    def __len__(self) -> int:
        return len(self._stages)

    def __iter__(self) -> Iterable[StageSpec]:
        return iter(self._topological)

    # ------------------------------------------------------------------
    # Structural identity
    # ------------------------------------------------------------------
    def structural_state(self) -> Tuple:
        """Canonical value-level description of the graph's structure.

        Covers everything that determines simulation results: stage names
        in declaration order, each stage's kernel (class plus
        configuration, via :meth:`TiledKernel.structural_state
        <repro.kernels.base.TiledKernel.structural_state>`), strided
        grouping and policy/order/optimization overrides, and every edge's
        endpoints, tensor, range map and policy override.  The graph
        *name* is excluded — it is a reporting label, not structure.

        Note ``range_map`` **is** part of the structural state even though
        :class:`Edge` equality ignores it (it defaults to ``compare=False``
        because callables rarely compare meaningfully): two graphs whose
        edges map consumer reads differently simulate differently, so they
        must never share a fingerprint.  Raises
        :class:`~repro.pipeline.structural.UnportableValueError` when the
        graph holds values without a process-independent identity (closure
        range maps, ad-hoc callables).
        """
        from repro.pipeline.structural import canonicalize

        cached = self.__dict__.get("_structural_state")
        if cached is not None:
            return cached
        stages = []
        for stage in self._stages:
            stages.append(
                (
                    "stage",
                    stage.name,
                    stage.kernel.structural_state(),
                    canonicalize(stage.strided_groups),
                    canonicalize(stage.policy),
                    canonicalize(stage.order),
                    canonicalize(stage.optimizations),
                )
            )
        edges = []
        for edge in self._edges:
            edges.append(
                (
                    "edge",
                    edge.producer,
                    edge.consumer,
                    edge.tensor,
                    canonicalize(edge.range_map),
                    canonicalize(edge.policy),
                )
            )
        state = ("pipeline-graph/v1", tuple(stages), tuple(edges))
        self._structural_state = state
        return state

    def structural_fingerprint(self) -> Optional[str]:
        """Process-independent content hash of the graph, or ``None``.

        Equal graphs — built in different processes, or rebuilt in this
        one — share the fingerprint, which is what lets sweep caches and
        the disk-backed result store replay results across graph objects
        and process lifetimes.  Returns ``None`` when the graph has no
        portable structural identity (see :meth:`structural_state`);
        callers then fall back to per-process identity keying.
        """
        from repro.pipeline.structural import (
            UnportableValueError,
            canonicalize,  # noqa: F401  (re-exported for callers)
            fingerprint,
        )

        if "_structural_fingerprint" in self.__dict__:
            return self._structural_fingerprint
        try:
            digest: Optional[str] = fingerprint(self.structural_state())
        except UnportableValueError:
            digest = None
        self._structural_fingerprint = digest
        return digest

    def describe(self) -> str:
        parts = [f"{stage.name}[{stage.kernel.grid}]" for stage in self._topological]
        label = f"{self._name!r}, " if self._name else ""
        return f"PipelineGraph({label}{' -> '.join(parts)}, {len(self._edges)} edges)"

    def __repr__(self) -> str:
        return self.describe()


def linear_graph(kernels: Sequence[TiledKernel], tensors: Sequence[str]) -> PipelineGraph:
    """Convenience builder for a straight chain: kernel *i+1* reads ``tensors[i]``.

    ``tensors`` has one entry per edge (``len(kernels) - 1``).
    """
    if len(tensors) != max(0, len(kernels) - 1):
        raise GraphValidationError(
            f"linear_graph needs one tensor per edge: {len(kernels)} kernels "
            f"but {len(tensors)} tensors"
        )
    stages = [StageSpec(name=kernel.name, kernel=kernel) for kernel in kernels]
    edges = [
        Edge(producer=stages[i].name, consumer=stages[i + 1].name, tensor=tensors[i])
        for i in range(len(tensors))
    ]
    return PipelineGraph(stages=stages, edges=edges)
