"""Pluggable execution backends for :class:`~repro.pipeline.graph.PipelineGraph`.

An :class:`Executor` turns the immutable graph description into one concrete
run: it binds per-execution state (semaphores, CuStage objects, stream
assignment, the cost model) to the graph's kernels, simulates, and unwinds.
Three backends are registered —

* ``streamsync`` — the paper's baseline: every kernel stripped of
  fine-grained synchronization, serialized on one stream;
* ``streamk``    — Stream-K GeMM decomposition under stream sync;
* ``cusync``     — the cuSync pipeline under a chosen policy family.

Backends never rebuild kernels: the graph's kernel objects are *re-bound*
for each execution (their ``sync`` / ``cost_model`` / ``functional``
execution slots are pointed at fresh per-run state, which also invalidates
any memoized plans), so the same graph can be run under every scheme,
policy and architecture in any order with bit-identical results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Type, Union

import numpy as np

from repro.errors import GraphValidationError, SimulationError
from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.gpu.memory import GlobalMemory
from repro.baselines.streamk import StreamKExecutor
from repro.baselines.streamsync import StreamSyncExecutor
from repro.cusync.handle import CuSyncPipeline, PipelineResult
from repro.cusync.optimizations import OptimizationFlags, auto_optimizations
from repro.cusync.policies import (
    PolicyAssignment,
    PolicyContext,
    PolicySpec,
    SyncPolicy,
)
from repro.cusync import policies as policy_registry
from repro.cusync.tile_orders import RowMajorOrder, TileOrder
from repro.pipeline.graph import Edge, PipelineGraph, StageSpec

#: Policy selector accepted by the cusync backend: a policy family name
#: (``"TileSync"``, ``"RowSync"``, ...), a :class:`PolicySpec`, a per-edge
#: :class:`PolicyAssignment`, or (legacy) an explicit per-stage list of
#: policy instances in the graph's launch order.
PolicyLike = Union[str, PolicySpec, PolicyAssignment, Sequence[SyncPolicy]]


# ----------------------------------------------------------------------
# Per-stage policy resolution (shared by the cusync backend and the legacy
# Workload helpers)
# ----------------------------------------------------------------------
def policy_context(stage: StageSpec) -> PolicyContext:
    """The registry context describing ``stage`` as a producer."""
    return PolicyContext(
        stage_name=stage.name,
        logical_grid=stage.kernel.stage_geometry().logical_grid,
        strided_groups=stage.strided_groups,
    )


def resolve_policy(family: Union[str, PolicySpec], stage: StageSpec) -> SyncPolicy:
    """Build the policy instance a named family uses for one stage.

    Thin wrapper over the :mod:`repro.cusync.policies` registry
    (:func:`repro.cusync.policies.resolve_policy`) binding the stage's
    :class:`~repro.cusync.policies.PolicyContext`.  ``StridedTileSync``
    falls back to plain TileSync when the stage declares no
    ``strided_groups`` or its grid's x extent is not an (integer) multiple
    of them.
    """
    return policy_registry.resolve_policy(family, policy_context(stage))


def resolve_order(family: Union[str, PolicySpec], stage: StageSpec) -> TileOrder:
    """Tile processing order paired with a policy family for one stage."""
    order = policy_registry.resolve_order_for(family, policy_context(stage))
    return order if order is not None else RowMajorOrder()


def auto_flags(
    graph: PipelineGraph,
    arch: GpuArchitecture,
    stage_summaries: Optional[Dict[str, "StageSummary"]] = None,
) -> Dict[str, OptimizationFlags]:
    """The automatic W/R/T choice of Section IV-C, one flag set per stage.

    Flags are derived per dependency edge from the *actual* producer and
    consumer kernels: an edge is "small" when both endpoints fit in fewer
    than two waves.  A consumer may elide its wait-kernel (W) only when
    every edge into it is small; a stage may skip the custom tile order (T)
    only when every incident edge is small; reordering tile loads (R) never
    hurts in this model and is always enabled.
    """
    summaries = stage_summaries if stage_summaries is not None else summarize_stages(graph)

    def edge_is_small(producer: str, consumer: str) -> bool:
        # Delegate the Section IV-C rule to the one canonical implementation;
        # auto_optimizations elides the wait-kernel exactly when both
        # endpoints fit in fewer than two waves.
        return auto_optimizations(
            producer_blocks=summaries[producer].blocks,
            consumer_blocks=summaries[consumer].blocks,
            producer_occupancy=summaries[producer].occupancy,
            consumer_occupancy=summaries[consumer].occupancy,
            arch=arch,
        ).avoid_wait_kernel

    flags: Dict[str, OptimizationFlags] = {}
    for stage in graph.topological_order:
        incoming = [edge_is_small(e.producer, e.consumer) for e in graph.in_edges(stage.name)]
        outgoing = [edge_is_small(e.producer, e.consumer) for e in graph.out_edges(stage.name)]
        flags[stage.name] = OptimizationFlags(
            avoid_wait_kernel=all(incoming),
            reorder_loads=True,
            avoid_custom_tile_order=all(incoming) and all(outgoing),
        )
    return flags


@dataclass(frozen=True)
class StageSummary:
    """Arch-dependent launch geometry of one stage, memoized by ``Session``."""

    blocks: int
    occupancy: int


def summarize_stages(graph: PipelineGraph) -> Dict[str, StageSummary]:
    """Per-stage block counts and occupancies.

    Kernels report occupancy through their *bound* cost model, so the
    caller must bind the target architecture's cost model first —
    executors do this before calling,
    :class:`~repro.pipeline.session.Session` memoizes the result per
    ``(graph, arch)``.
    """
    summaries: Dict[str, StageSummary] = {}
    for stage in graph.topological_order:
        summaries[stage.name] = StageSummary(
            blocks=stage.kernel.grid.volume, occupancy=stage.kernel.occupancy()
        )
    return summaries


# ----------------------------------------------------------------------
# Execution context and backend protocol
# ----------------------------------------------------------------------
@dataclass
class ExecutionContext:
    """Everything one execution of a graph depends on besides the graph."""

    arch: GpuArchitecture = TESLA_V100
    cost_model: Optional[CostModel] = None
    functional: bool = False
    #: Policy selection for the cusync backend: family name, PolicySpec,
    #: per-edge PolicyAssignment, or (legacy) per-stage policy list.
    policy: PolicyLike = "TileSync"
    #: Explicit optimization flags; ``None`` applies the automatic per-edge
    #: W/R/T choice of Section IV-C.
    optimizations: Optional[OptimizationFlags] = None
    memory: Optional[GlobalMemory] = None
    tensors: Optional[Dict[str, np.ndarray]] = None
    #: Memoized per-arch stage geometry (filled by ``Session``).
    stage_summaries: Optional[Dict[str, StageSummary]] = None

    def resolved_cost_model(self) -> CostModel:
        return self.cost_model if self.cost_model is not None else CostModel(arch=self.arch)


class Executor(ABC):
    """One way of executing a :class:`PipelineGraph` (a *scheme*)."""

    #: Registry key (``streamsync`` / ``streamk`` / ``cusync`` / ...).
    scheme: str = ""

    @abstractmethod
    def run(self, graph: PipelineGraph, ctx: ExecutionContext) -> PipelineResult:
        """Execute ``graph`` under this scheme and return the result."""


_EXECUTORS: Dict[str, Type[Executor]] = {}


def register_executor(cls: Type[Executor]) -> Type[Executor]:
    """Register an executor class under its ``scheme`` name (decorator)."""
    if not cls.scheme:
        raise GraphValidationError(f"executor {cls.__name__} declares no scheme name")
    _EXECUTORS[cls.scheme] = cls
    return cls


def get_executor(scheme: str) -> Executor:
    """Instantiate the backend registered for ``scheme``."""
    normalized = scheme.lower()
    cls = _EXECUTORS.get(normalized)
    if cls is None:
        raise GraphValidationError(
            f"unknown execution scheme {scheme!r}; available: {', '.join(available_schemes())}"
        )
    return cls()


def available_schemes() -> List[str]:
    return sorted(_EXECUTORS)


# ----------------------------------------------------------------------
# The three paper backends
# ----------------------------------------------------------------------
@register_executor
class StreamSyncBackend(Executor):
    """CUDA stream synchronization: the paper's baseline."""

    scheme = "streamsync"

    def run(self, graph: PipelineGraph, ctx: ExecutionContext) -> PipelineResult:
        executor = StreamSyncExecutor(
            arch=ctx.arch, cost_model=ctx.resolved_cost_model(), functional=ctx.functional
        )
        return executor.run(list(graph.kernels), memory=ctx.memory, tensors=ctx.tensors)


@register_executor
class StreamKBackend(Executor):
    """Stream-K GeMM decomposition under stream synchronization."""

    scheme = "streamk"

    def run(self, graph: PipelineGraph, ctx: ExecutionContext) -> PipelineResult:
        if ctx.functional:
            raise SimulationError(
                "the streamk backend models timing only: Stream-K partial-tile "
                "accumulation order is not reproduced numerically, so functional "
                "simulation is not supported under scheme='streamk'"
            )
        cost_model = ctx.resolved_cost_model()
        executor = StreamKExecutor(arch=ctx.arch, cost_model=cost_model)
        # Stream-K variants are per-execution derivations (they re-partition
        # the K dimension for the target arch); the graph's own kernels are
        # left untouched.
        items = [StreamKExecutor.convert(kernel, cost_model) for kernel in graph.kernels]
        return executor.run(items, memory=ctx.memory, tensors=ctx.tensors)


@register_executor
class CuSyncBackend(Executor):
    """Fine-grained tile synchronization: the paper's cuSync pipelines.

    Per execution this backend materializes the binding layer — a
    :class:`~repro.cusync.handle.CuSyncPipeline` holding fresh
    :class:`~repro.cusync.custage.CuStage` objects, stream assignments and
    semaphore allocations — wires it from the graph's edges, and runs it.
    The binding is discarded afterwards; the graph and its kernels survive
    unchanged for the next run.
    """

    scheme = "cusync"

    def run(self, graph: PipelineGraph, ctx: ExecutionContext) -> PipelineResult:
        cost_model = ctx.resolved_cost_model()
        # Bind this run's cost model before any occupancy is derived: the
        # automatic flag selection below reads kernel.occupancy(), which
        # must reflect ctx.arch, not whatever architecture the kernel was
        # constructed (or last run) with.
        for stage in graph.topological_order:
            stage.kernel.cost_model = cost_model
        pipeline = CuSyncPipeline(
            arch=ctx.arch, cost_model=cost_model, functional=ctx.functional
        )

        shared_flags: Optional[OptimizationFlags] = ctx.optimizations
        per_stage_flags: Optional[Dict[str, OptimizationFlags]] = None
        if shared_flags is None:
            per_stage_flags = auto_flags(graph, ctx.arch, ctx.stage_summaries)

        policy = ctx.policy
        assignment: Optional[PolicyAssignment] = None
        per_stage_list: Optional[Sequence[SyncPolicy]] = None
        if isinstance(policy, (str, PolicySpec, PolicyAssignment)):
            assignment = PolicyAssignment.coerce(policy)
            _check_assignment(assignment, graph)
        else:
            per_stage_list = list(policy)
            if len(per_stage_list) != len(graph):
                raise GraphValidationError(
                    f"per-stage policy list has {len(per_stage_list)} entries but the graph "
                    f"has {len(graph)} stages (launch order: {', '.join(graph.stage_names)})"
                )

        stages: Dict[str, object] = {}
        stage_policies: Dict[str, SyncPolicy] = {}
        for index, stage in enumerate(graph.topological_order):
            if assignment is not None:
                spec = assignment.spec_for_stage(stage.name)
                stage_policy = stage.policy if stage.policy is not None else resolve_policy(spec, stage)
                stage_order = stage.order if stage.order is not None else resolve_order(spec, stage)
            else:
                stage_policy = per_stage_list[index]
                stage_order = stage.order if stage.order is not None else RowMajorOrder()
            if stage.optimizations is not None:
                flags = stage.optimizations
            elif shared_flags is not None:
                flags = shared_flags
            else:
                flags = per_stage_flags[stage.name]
            stage_policies[stage.name] = stage_policy
            stages[stage.name] = pipeline.add_stage(
                stage.kernel,
                policy=stage_policy,
                order=stage_order,
                optimizations=flags,
                name=stage.name,
            )
        for stage in graph.topological_order:
            for edge in graph.in_edges(stage.name):
                pipeline.add_dependency(
                    stages[edge.producer],
                    stages[edge.consumer],
                    edge.tensor,
                    range_map=edge.range_map,
                    policy=self._edge_policy(edge, graph, assignment, stage_policies),
                )
        return pipeline.run(memory=ctx.memory, tensors=ctx.tensors)

    @staticmethod
    def _edge_policy(
        edge: Edge,
        graph: PipelineGraph,
        assignment: Optional[PolicyAssignment],
        stage_policies: Dict[str, SyncPolicy],
    ) -> Optional[SyncPolicy]:
        """The policy instance guarding one edge, or ``None`` to inherit.

        Precedence: the edge's own ``policy`` field, then the run
        assignment's per-edge entry, then the producer stage's policy
        (returned as ``None`` so the stage's slot 0 is used directly).
        Overrides that resolve to the producer's own policy are collapsed
        to ``None`` as well — the stage deduplicates by value anyway, this
        just keeps the intent visible at the call site.
        """
        producer_stage = graph.stage(edge.producer)
        selected: Optional[Union[str, PolicySpec, SyncPolicy]] = edge.policy
        if selected is None and assignment is not None:
            selected = assignment.spec_for_edge(edge.producer, edge.consumer, edge.tensor)
        if selected is None:
            return None
        if isinstance(selected, SyncPolicy):
            resolved = selected
        else:
            resolved = resolve_policy(selected, producer_stage)
        if resolved.key() == stage_policies[edge.producer].key():
            return None
        return resolved


def _check_assignment(assignment: PolicyAssignment, graph: PipelineGraph) -> None:
    """Reject assignments addressing stages/edges the graph does not have."""
    stage_names = set(stage.name for stage in graph.stages)
    for name in assignment.stage_names():
        if name not in stage_names:
            raise GraphValidationError(
                f"policy assignment names stage {name!r}, but the graph has no "
                f"such stage (stages: {', '.join(sorted(stage_names))})"
            )
    edge_triples = {(edge.producer, edge.consumer, edge.tensor) for edge in graph.edges}
    edge_pairs = {(producer, consumer) for producer, consumer, _ in edge_triples}
    for producer, consumer, tensor in assignment.edge_keys():
        if tensor is None:
            if (producer, consumer) not in edge_pairs:
                raise GraphValidationError(
                    f"policy assignment names edge {producer!r} -> {consumer!r}, "
                    "but the graph has no edge between those stages"
                )
        elif (producer, consumer, tensor) not in edge_triples:
            raise GraphValidationError(
                f"policy assignment names edge {producer!r} -> {consumer!r} for "
                f"tensor {tensor!r}, but the graph has no such edge"
            )
