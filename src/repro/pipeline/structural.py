"""Structural canonicalization: value-level fingerprints for cache keys.

The sweep-result cache (in memory, :class:`~repro.pipeline.session.Session`)
and the disk-backed result store (:mod:`repro.service.store`) both key
results on *what a point computes*, not on which objects happen to spell
it.  That requires lowering arbitrary configuration values — kernels,
frozen dataclasses, policy specs, tile orders, module-level range maps —
into one canonical, deterministic form:

* :func:`canonicalize` maps a value to a nested tuple of primitives
  (tagged so ``1``, ``1.0``, ``True`` and ``"1"`` never collide).  The
  mapping is **process-independent**: equal values canonicalize equally in
  any interpreter, so fingerprints derived from it are valid disk keys.
* :func:`fingerprint` hashes a canonical form to a short stable hex
  digest (sha256).

Values whose identity cannot be captured structurally — closures, lambdas,
bound methods, objects beyond the recursion budget — raise
:class:`UnportableValueError`.  Callers degrade gracefully: the session
falls back to its per-process weakref graph tokens (in-memory caching
still works; the disk tier skips the point).
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from typing import Any, Tuple

__all__ = [
    "UnportableValueError",
    "canonicalize",
    "fingerprint",
]

#: Nesting budget for the generic-object path: configuration values are
#: shallow (problem/config dataclasses, epilogues, specs); anything deeper
#: is some runtime object graph we must not pretend to fingerprint.
_MAX_DEPTH = 24


class UnportableValueError(TypeError):
    """A value has no process-independent structural form (e.g. a closure)."""


def _canonical_callable(value: Any) -> Tuple:
    module = getattr(value, "__module__", None)
    qualname = getattr(value, "__qualname__", None)
    if not module or not qualname:
        raise UnportableValueError(f"callable {value!r} has no stable module/qualname")
    if "<locals>" in qualname or "<lambda>" in qualname:
        raise UnportableValueError(
            f"callable {module}.{qualname} is a closure or lambda; only "
            "module-level functions have a process-independent identity"
        )
    if getattr(value, "__self__", None) is not None:
        raise UnportableValueError(
            f"bound method {module}.{qualname} depends on its instance's state"
        )
    return ("fn", module, qualname)


def _object_state(value: Any) -> dict:
    """Collected attribute state of a plain object (``__dict__`` + slots)."""
    state = dict(getattr(value, "__dict__", {}))
    for klass in type(value).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if slot in ("__dict__", "__weakref__") or slot in state:
                continue
            try:
                state[slot] = getattr(value, slot)
            except AttributeError:
                continue
    return state


def canonicalize(value: Any, depth: int = 0) -> Tuple:
    """Lower ``value`` to a canonical nested tuple of tagged primitives.

    Raises :class:`UnportableValueError` when ``value`` (or anything it
    contains) has no process-independent structural identity.
    """
    if depth > _MAX_DEPTH:
        raise UnportableValueError("value nests too deeply to fingerprint")
    if value is None:
        return ("none",)
    if value is True or value is False:
        return ("bool", value)
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, float):
        # repr() is the shortest round-tripping decimal form: exact,
        # deterministic, and distinct from the equal int.
        return ("float", repr(value))
    if isinstance(value, str):
        return ("str", value)
    if isinstance(value, bytes):
        return ("bytes", value.hex())
    # Registry-addressed spec types carry explicit case-insensitive
    # equality; mirror it so equal specs fingerprint equally.
    from repro.cusync.policies import PolicyAssignment, PolicySpec
    from repro.gpu.arch import ArchSpec

    if isinstance(value, PolicySpec):
        return (
            "policy-spec",
            value.family.lower(),
            canonicalize(value.params, depth + 1),
        )
    if isinstance(value, PolicyAssignment):
        return (
            "policy-assignment",
            canonicalize(value.default, depth + 1),
            canonicalize(value.stages, depth + 1),
            canonicalize(value.edges, depth + 1),
        )
    if isinstance(value, ArchSpec):
        return (
            "arch-spec",
            value.name.lower(),
            canonicalize(value.overrides, depth + 1),
        )
    if isinstance(value, tuple) and hasattr(value, "_fields"):  # NamedTuple
        return (
            "namedtuple",
            _class_path(type(value)),
            tuple(canonicalize(item, depth + 1) for item in value),
        )
    if isinstance(value, (tuple, list)):
        return ("seq", tuple(canonicalize(item, depth + 1) for item in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(canonicalize(item, depth + 1) for item in value)))
    if isinstance(value, dict):
        return (
            "map",
            tuple(
                sorted(
                    (canonicalize(key, depth + 1), canonicalize(item, depth + 1))
                    for key, item in value.items()
                )
            ),
        )
    if is_dataclass(value) and not isinstance(value, type):
        return (
            "dataclass",
            _class_path(type(value)),
            tuple(
                (spec.name, canonicalize(getattr(value, spec.name), depth + 1))
                for spec in fields(value)
            ),
        )
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        np = None
    if np is not None:
        if isinstance(value, np.ndarray):
            return ("ndarray", value.dtype.str, value.shape, value.tobytes().hex())
        if isinstance(value, np.generic):
            return ("np-scalar", value.dtype.str, repr(value.item()))
    if isinstance(value, type):
        return ("class", _class_path(value))
    if _is_plain_function(value):
        return _canonical_callable(value)
    # Generic object: class identity plus collected attribute state.  This
    # covers SyncPolicy / TileOrder / Epilogue instances (callable or not),
    # whose behaviour is fully determined by class and constructor
    # parameters.
    state = _object_state(value)
    return (
        "obj",
        _class_path(type(value)),
        tuple(
            sorted(
                (name, canonicalize(item, depth + 1))
                for name, item in state.items()
                if not name.startswith("_")
            )
        ),
    )


def _is_plain_function(value: Any) -> bool:
    import types

    return isinstance(
        value,
        (types.FunctionType, types.BuiltinFunctionType, types.MethodType),
    )


def _class_path(klass: type) -> str:
    return f"{klass.__module__}.{klass.__qualname__}"


def fingerprint(canonical: Tuple) -> str:
    """A short stable hex digest of a canonical form (sha256, 32 chars)."""
    return hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()[:32]
