"""One-shot :func:`run` and the reusable :class:`Session`.

``run(graph, scheme=..., policy=...)`` executes an immutable
:class:`~repro.pipeline.graph.PipelineGraph` once.  A :class:`Session` is
the stateful companion for repeated execution: it caches one
:class:`~repro.gpu.costmodel.CostModel` per architecture and memoizes the
per-arch stage geometry (block counts and occupancies) that the automatic
W/R/T flag selection needs, so sweeping a graph over many
``(scheme, policy, arch)`` points re-derives nothing per point and never
rebuilds a kernel.

:meth:`Session.sweep` evaluates a grid of :class:`SweepPoint` work — either
the classic ``(scheme, policy, arch)`` product over one graph, or an
explicit iterable of ``(graph, SweepPoint)`` pairs mixing several graphs
and per-edge :class:`~repro.cusync.policies.PolicyAssignment` grids in one
call (:func:`sweep_policies` builds such grids).  Three execution modes are
available and produce bit-identical results, because the simulator is
deterministic and every point runs on an independent binding:

``mode="process"``
    Points fan out over ``concurrent.futures`` worker processes operating
    on pickled copies of the graphs.  Graphs whose range maps are ad-hoc
    closures cannot cross process boundaries.
``mode="thread"``
    Points fan out over a thread pool; points of the *same* graph
    serialize on a per-graph lock (executors re-bind that graph's kernels
    per run), so threads buy concurrency across graphs — exactly the
    multi-graph batch case — and work for closure-carrying graphs.
``mode="serial"``
    A plain in-process loop.

``mode=None`` picks ``process`` when every graph is picklable and
otherwise warns once (naming the offending stage and the ``mode="thread"``
alternative) before running serially.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.gpu.arch import (
    ArchLike,
    ArchSpec,
    GpuArchitecture,
    TESLA_V100,
    arch_registry_generation,
    canonical_arch_key,
    resolve_arch,
)
from repro.gpu.costmodel import CostModel
from repro.gpu.memory import GlobalMemory
from repro.cusync.handle import PipelineResult
from repro.cusync.optimizations import OptimizationFlags
from repro.cusync.policies import (
    PolicyAssignment,
    PolicySpec,
    policy_registry_generation,
)
from repro.pipeline.executors import (
    ExecutionContext,
    PolicyLike,
    StageSummary,
    get_executor,
    summarize_stages,
)
from repro.pipeline.graph import PipelineGraph

#: What a sweep point's policy axis accepts (``None`` for non-cusync points).
SweepPolicy = Union[None, str, PolicySpec, PolicyAssignment]


def run(
    graph: PipelineGraph,
    scheme: str = "cusync",
    policy: PolicyLike = "TileSync",
    optimizations: Optional[OptimizationFlags] = None,
    arch: ArchLike = TESLA_V100,
    cost_model: Optional[CostModel] = None,
    functional: bool = False,
    memory: Optional[GlobalMemory] = None,
    tensors: Optional[Dict[str, np.ndarray]] = None,
) -> PipelineResult:
    """Execute ``graph`` once under ``scheme``.

    ``policy`` and ``optimizations`` only apply to the ``cusync`` scheme;
    ``policy`` may be a family name, a
    :class:`~repro.cusync.policies.PolicySpec` or a per-edge
    :class:`~repro.cusync.policies.PolicyAssignment`; ``arch`` may be a
    registered architecture name, an
    :class:`~repro.gpu.arch.ArchSpec` or a raw
    :class:`~repro.gpu.arch.GpuArchitecture`;
    ``optimizations=None`` selects the automatic per-edge W/R/T flags
    (Section IV-C).  The graph is never mutated and its kernels are never
    rebuilt — run the same graph again under any other configuration.
    """
    ctx = ExecutionContext(
        arch=resolve_arch(arch),
        cost_model=cost_model,
        functional=functional,
        policy=policy,
        optimizations=optimizations,
        memory=memory,
        tensors=tensors,
    )
    return get_executor(scheme).run(graph, ctx)


def _policy_label(policy: SweepPolicy) -> str:
    if policy is None:
        return ""
    if isinstance(policy, str):
        return policy
    return policy.label()


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep: ``(scheme, policy, arch)``.

    ``policy`` may be a family name, a
    :class:`~repro.cusync.policies.PolicySpec` or a full per-edge
    :class:`~repro.cusync.policies.PolicyAssignment`; ``arch`` may be a
    registered architecture name, an :class:`~repro.gpu.arch.ArchSpec` or
    a :class:`~repro.gpu.arch.GpuArchitecture` instance (specs and names
    are the picklable, registry-resolved forms); non-cusync schemes use
    ``policy=None``.
    """

    scheme: str
    policy: SweepPolicy
    arch: ArchLike

    def resolved_arch(self) -> GpuArchitecture:
        """The concrete architecture this point runs on."""
        return resolve_arch(self.arch)

    def label(self) -> str:
        policy = _policy_label(self.policy)
        suffix = f":{policy}" if policy else ""
        return f"{self.scheme}{suffix}@{self.resolved_arch().name}"


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one sweep point, small enough to cross process boundaries."""

    scheme: str
    policy: SweepPolicy
    arch_name: str
    total_time_us: float
    total_wait_time_us: float
    kernel_durations_us: Tuple[Tuple[str, float], ...]
    #: Which graph of a multi-graph sweep produced this result (the graph's
    #: ``name`` when set, otherwise its position in the work list).
    graph_label: str = ""
    #: Whether this result was replayed from the session's sweep cache
    #: instead of simulated fresh (see :class:`Session`).  Diagnostic
    #: metadata: replayed results are bit-identical to fresh ones, so the
    #: flag is excluded from equality.
    cached: bool = field(default=False, compare=False)

    @property
    def policy_label(self) -> str:
        return _policy_label(self.policy)

    def duration_of(self, kernel_name: str) -> float:
        return dict(self.kernel_durations_us)[kernel_name]


def _sweep_point_result(
    graph: PipelineGraph,
    point: SweepPoint,
    cost_model: Optional[CostModel] = None,
    stage_summaries: Optional[Dict[str, StageSummary]] = None,
    graph_label: str = "",
) -> SweepResult:
    """Evaluate one sweep point (always timing-only, never functional).

    ``cost_model`` / ``stage_summaries`` are optional memoized inputs the
    serial path passes from the session's caches; workers pass neither and
    derive both fresh.  Either way the values are identical (cost models
    for one arch are equal-valued, stage summaries are deterministic), so
    parallel and serial sweeps agree bit for bit.
    """
    arch = resolve_arch(point.arch)
    ctx = ExecutionContext(
        arch=arch,
        cost_model=cost_model,
        functional=False,
        policy=point.policy if point.policy is not None else "TileSync",
        stage_summaries=stage_summaries if point.scheme == "cusync" else None,
    )
    result = get_executor(point.scheme).run(graph, ctx)
    trace = result.simulation.trace
    return SweepResult(
        scheme=point.scheme,
        policy=point.policy,
        arch_name=arch.name,
        total_time_us=result.total_time_us,
        total_wait_time_us=result.total_wait_time_us(),
        kernel_durations_us=tuple(
            (name, stats.duration_us) for name, stats in sorted(trace.kernels.items())
        ),
        graph_label=graph_label,
    )


def _sweep_worker(
    payload: Tuple[PipelineGraph, SweepPoint, Optional[CostModel], str]
) -> SweepResult:
    """Top-level worker entry point (must be picklable by name)."""
    graph, point, cost_model, graph_label = payload
    return _sweep_point_result(graph, point, cost_model=cost_model, graph_label=graph_label)


# ----------------------------------------------------------------------
# Picklability diagnosis for the process mode
# ----------------------------------------------------------------------
def _picklable(value) -> bool:
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True


def _closure_culprit(graph: PipelineGraph) -> Optional[str]:
    """Human-readable description of what keeps ``graph`` off the process pool."""
    if _picklable(graph):
        return None
    for edge in graph.edges:
        if edge.range_map is not None and not _picklable(edge.range_map):
            map_name = getattr(edge.range_map, "__qualname__", repr(edge.range_map))
            return (
                f"edge {edge.producer!r} -> {edge.consumer!r} carries the "
                f"closure range map {map_name!r}"
            )
    for stage in graph.stages:
        if not _picklable(stage.kernel):
            return f"stage {stage.name!r} holds an unpicklable kernel"
    return "the graph object itself cannot be pickled"


def _evict_graph_entries(session_ref: "weakref.ref[Session]", token: int) -> None:
    """Drop a dead graph's sweep-cache entries (weakref.finalize callback).

    Tokens are never reused, so the dead graph's entries could never be
    hit again — this just stops them from accumulating in long-lived
    sessions that sweep many transient graphs.  The callback holds the
    session weakly so a finalizer on a long-lived graph does not pin it.
    """
    session = session_ref()
    if session is not None:
        cache = session._sweep_cache
        for key in [key for key in cache if key[0] == token]:
            del cache[key]


#: Culprit strings already warned about (the serial fallback warns once per
#: distinct cause per process, not once per sweep call).
_FALLBACK_WARNED: set = set()


def _warn_serial_fallback(graph: PipelineGraph, culprit: str) -> None:
    key = (graph.name or "", culprit)
    if key in _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED.add(key)
    label = graph.name or graph.describe()
    warnings.warn(
        f"Session.sweep: graph {label} cannot be sent to worker processes "
        f"({culprit}); running this sweep serially. Pass mode='thread' to "
        "sweep closure-carrying graphs concurrently (multi-graph batches "
        "parallelize across graphs), or make the range maps module-level "
        "functions to enable mode='process'.",
        RuntimeWarning,
        stacklevel=3,
    )


# ----------------------------------------------------------------------
# Sweep-grid helpers
# ----------------------------------------------------------------------
def sweep_policies(
    graph: PipelineGraph,
    families: Sequence[Union[str, PolicySpec]] = ("TileSync", "RowSync"),
    arches: Sequence[ArchLike] = (TESLA_V100,),
    scheme: str = "cusync",
    mixed: bool = False,
) -> List[Tuple[PipelineGraph, SweepPoint]]:
    """Build ``(graph, SweepPoint)`` work covering a policy grid.

    With ``mixed=False`` (the default) one uniform point per family is
    produced.  With ``mixed=True`` the full cartesian product of
    ``families`` over the graph's edges is generated as per-edge
    :class:`~repro.cusync.policies.PolicyAssignment` grids — the uniform
    points are the product's diagonal, so they are always included.  The
    grid has ``len(families) ** len(edges)`` points per arch; it is the
    caller's job to keep that tractable (prune ``families`` or sweep a
    subgraph).  Concatenate the work of several graphs and hand it to
    :meth:`Session.sweep` for a multi-graph batch::

        work = sweep_policies(mlp, ("TileSync", "RowSync"), mixed=True) \\
             + sweep_policies(attention, ("TileSync", "StridedTileSync"))
        results = session.sweep(work, mode="thread")
    """
    specs = [PolicySpec.coerce(family) for family in families]
    edges = [(edge.producer, edge.consumer, edge.tensor) for edge in graph.edges]
    work: List[Tuple[PipelineGraph, SweepPoint]] = []
    for arch in arches:
        if not mixed or not edges:
            for spec in specs:
                work.append((graph, SweepPoint(scheme=scheme, policy=spec, arch=arch)))
            continue
        for combination in itertools.product(specs, repeat=len(edges)):
            uniform = all(spec == combination[0] for spec in combination)
            if uniform:
                policy: SweepPolicy = combination[0]
            else:
                policy = PolicyAssignment(
                    default=combination[0],
                    edges={key: spec for key, spec in zip(edges, combination)},
                )
            work.append((graph, SweepPoint(scheme=scheme, policy=policy, arch=arch)))
    return work


def sweep_archs(
    graphs: Union[PipelineGraph, Sequence[PipelineGraph]],
    arches: Sequence[ArchLike] = ("V100", "A100"),
    policies: Sequence[Union[str, PolicySpec, PolicyAssignment]] = ("TileSync",),
    schemes: Sequence[str] = ("cusync",),
) -> List[Tuple[PipelineGraph, SweepPoint]]:
    """Build ``(graph, SweepPoint)`` work covering an architecture grid.

    For every graph, the full ``arch x scheme (x policy)`` product is
    generated; non-cusync schemes contribute one point per architecture
    (they have no policy axis).  Architecture names and
    :class:`~repro.gpu.arch.ArchSpec` values are kept as specs inside the
    points — hashable and picklable, resolving against the registry in
    whatever process evaluates them — while raw
    :class:`~repro.gpu.arch.GpuArchitecture` instances pass through for
    the legacy path.  Feed the work to :meth:`Session.sweep` in any of the
    three modes::

        work = sweep_archs([mlp, attention], ("V100", "A100", "H100-SXM"),
                           policies=("TileSync", "RowSync"),
                           schemes=("streamsync", "cusync"))
        results = session.sweep(work, mode="thread")
    """
    graph_list = [graphs] if isinstance(graphs, PipelineGraph) else list(graphs)
    arch_axis: List[ArchLike] = [
        arch if isinstance(arch, GpuArchitecture) else ArchSpec.coerce(arch)
        for arch in arches
    ]
    work: List[Tuple[PipelineGraph, SweepPoint]] = []
    for graph in graph_list:
        for arch in arch_axis:
            for scheme in schemes:
                if scheme == "cusync":
                    for policy in policies:
                        work.append(
                            (graph, SweepPoint(scheme=scheme, policy=policy, arch=arch))
                        )
                else:
                    work.append((graph, SweepPoint(scheme=scheme, policy=None, arch=arch)))
    return work


class Session:
    """Reusable execution context: cached cost models, memoized geometry.

    A session binds no state to any graph; it only remembers derived,
    read-only facts (one cost model per architecture, per-arch stage
    summaries per graph) so repeated :meth:`run` calls and :meth:`sweep`
    points skip redundant derivation.

    On top of the derivation caches, :meth:`sweep` keeps a **result cache**:
    the simulator is deterministic and sweep points are functional (timing
    only, no per-run memory or tensors), so a point's
    :class:`SweepResult` is fully determined by its trace key — the tuple
    ``(graph, resolved arch key, scheme, resolved policy assignment)``,
    where the graph is identified by object (graphs are mutable-by-nobody
    but not value-hashable) and the policy lowers through
    :meth:`~repro.cusync.policies.PolicyAssignment.coerce` so equivalent
    spellings (``"TileSync"``, ``PolicySpec("TileSync")``, a uniform
    assignment) share one entry.  Duplicate points within one work list
    simulate once, and repeated sweeps over the same graphs replay cached
    results — bit-identical apart from the :attr:`SweepResult.cached` flag
    and the requested policy spelling/graph label.  Disable with
    ``Session(sweep_cache=False)`` (or per call, ``sweep(..., cache=False)``)
    for memory-constrained runs; :attr:`sweep_cache_hits` /
    :attr:`sweep_cache_misses` count replays vs simulations.
    """

    def __init__(
        self,
        arch: ArchLike = TESLA_V100,
        functional: bool = False,
        cost_model: Optional[CostModel] = None,
        sweep_cache: bool = True,
    ) -> None:
        #: The session's default architecture, always resolved to a concrete
        #: instance (names and :class:`~repro.gpu.arch.ArchSpec` values are
        #: accepted and looked up in the registry).
        self.arch = resolve_arch(arch)
        self.functional = functional
        #: One cost model per architecture, keyed by the *resolved*
        #: :class:`~repro.gpu.arch.ArchSpec` when the architecture is
        #: registry-addressable (names, specs, and instances value-equal to
        #: a registered preset all share one entry) and by object identity
        #: for unregistered instances (the legacy shim path).  The arch
        #: objects are stored in the values: holding them alive guarantees
        #: an id() key is never recycled while its entry exists.
        self._cost_models: Dict[object, Tuple[GpuArchitecture, CostModel]] = {}
        #: Memoized stage geometry: graph -> {arch key: (arch, summaries)},
        #: with the same arch keying as the cost models.  Weakly keyed so a
        #: session that churns through many graphs (an autotuning loop, the
        #: bench harness) does not pin every dead graph and its kernels in
        #: memory.
        self._stage_summaries: "weakref.WeakKeyDictionary[PipelineGraph, Dict[object, Tuple[GpuArchitecture, Dict[str, StageSummary]]]]" = (
            weakref.WeakKeyDictionary()
        )
        #: The session's own (original arch argument, custom cost model),
        #: re-pinned into the cache whenever a registry change flushes it.
        self._session_cost_model: Optional[Tuple[ArchLike, CostModel]] = (
            (arch, cost_model) if cost_model is not None else None
        )
        #: Registry state the spec-keyed caches were built against; when a
        #: register_arch/unregister_arch call changes resolutions, the
        #: derived caches are flushed so a run never pairs a new
        #: architecture instance with a stale cost model.
        self._registry_generation = arch_registry_generation()
        self._policy_registry_generation = policy_registry_generation()
        #: Sweep-result cache: trace key -> SweepResult (see class docs).
        self._sweep_cache_enabled = bool(sweep_cache)
        self._sweep_cache: Dict[Tuple, SweepResult] = {}
        #: Stable per-graph tokens for the trace keys.  Weakly keyed, and
        #: tokens are never reused, so a dead graph's stale cache entries
        #: can never be hit by a new graph that recycles its id().
        self._graph_tokens: "weakref.WeakKeyDictionary[PipelineGraph, int]" = (
            weakref.WeakKeyDictionary()
        )
        self._graph_token_counter = itertools.count()
        #: How many sweep points were replayed from / simulated into the
        #: result cache over the session's lifetime.
        self.sweep_cache_hits = 0
        self.sweep_cache_misses = 0
        self._pin_session_cost_model()

    def _pin_session_cost_model(self) -> None:
        if self._session_cost_model is None:
            return
        # Stored under both the key of the *original* arch argument (a
        # spec, when one was passed) and of the resolved instance, so
        # explicit lookups by either form hit the calibrated model.
        arch_arg, cost_model = self._session_cost_model
        entry = (self.arch, cost_model)
        self._cost_models[canonical_arch_key(arch_arg)] = entry
        self._cost_models[canonical_arch_key(self.arch)] = entry

    def _check_registry_generation(self) -> None:
        generation = arch_registry_generation()
        if generation != self._registry_generation:
            self._registry_generation = generation
            self._cost_models.clear()
            self._stage_summaries.clear()
            # Arch keys may resolve differently now; cached sweep results
            # keyed on the old resolutions must not be replayed.
            self._sweep_cache.clear()
            self._pin_session_cost_model()
        # Policy specs also resolve through a mutable registry: a
        # re-registered family changes what a cached point's policy key
        # *means*, so registry mutations flush the result cache too.
        policy_generation = policy_registry_generation()
        if policy_generation != self._policy_registry_generation:
            self._policy_registry_generation = policy_generation
            self._sweep_cache.clear()

    # ------------------------------------------------------------------
    # Sweep-result cache
    # ------------------------------------------------------------------
    def clear_sweep_cache(self) -> None:
        """Drop every cached sweep result (the derivation caches survive)."""
        self._sweep_cache.clear()

    @property
    def sweep_cache_size(self) -> int:
        return len(self._sweep_cache)

    def _graph_token(self, graph: PipelineGraph) -> int:
        token = self._graph_tokens.get(graph)
        if token is None:
            token = next(self._graph_token_counter)
            self._graph_tokens[graph] = token
            # When the graph dies its entries can never be hit again;
            # evict them so sessions sweeping many transient graphs don't
            # accumulate unreachable results.
            weakref.finalize(graph, _evict_graph_entries, weakref.ref(self), token)
        return token

    def _sweep_cache_key(self, graph: PipelineGraph, point: SweepPoint) -> Optional[Tuple]:
        """The point's trace key, or ``None`` when it cannot be cached.

        The arch axis keys through :func:`canonical_arch_key` (the same
        keying as the cost-model cache, whose entries keep unregistered
        instances alive so an id-based key is never recycled while cache
        entries exist); the policy axis lowers to a
        :class:`~repro.cusync.policies.PolicyAssignment` so equivalent
        spellings share an entry.  Non-cusync schemes have no policy axis.
        """
        try:
            if point.scheme == "cusync" and point.policy is not None:
                policy_key = PolicyAssignment.coerce(point.policy)
            else:
                policy_key = None
            arch_key = canonical_arch_key(point.arch if point.arch is not None else self.arch)
        except Exception:
            return None
        return (self._graph_token(graph), arch_key, point.scheme, policy_key)

    # ------------------------------------------------------------------
    def _arch_entry(self, arch: Optional[ArchLike]) -> Tuple[object, GpuArchitecture]:
        """Resolve an architecture axis value to its (cache key, instance)."""
        self._check_registry_generation()
        if arch is None:
            return canonical_arch_key(self.arch), self.arch
        return canonical_arch_key(arch), resolve_arch(arch)

    def cost_model(self, arch: Optional[ArchLike] = None) -> CostModel:
        """The session's cached cost model for ``arch`` (default: session arch)."""
        key, resolved = self._arch_entry(arch)
        entry = self._cost_models.get(key)
        if entry is None:
            entry = (resolved, CostModel(arch=resolved))
            self._cost_models[key] = entry
        return entry[1]

    def stage_summaries(
        self, graph: PipelineGraph, arch: Optional[ArchLike] = None
    ) -> Dict[str, StageSummary]:
        """Memoized per-arch block counts / occupancies for ``graph``."""
        key, resolved = self._arch_entry(arch)
        per_arch = self._stage_summaries.setdefault(graph, {})
        entry = per_arch.get(key)
        if entry is None:
            cost_model = self.cost_model(arch)
            for stage in graph.topological_order:
                stage.kernel.cost_model = cost_model
            entry = (resolved, summarize_stages(graph))
            per_arch[key] = entry
        return entry[1]

    # ------------------------------------------------------------------
    def run(
        self,
        graph: PipelineGraph,
        scheme: str = "cusync",
        policy: PolicyLike = "TileSync",
        optimizations: Optional[OptimizationFlags] = None,
        arch: Optional[ArchLike] = None,
        memory: Optional[GlobalMemory] = None,
        tensors: Optional[Dict[str, np.ndarray]] = None,
    ) -> PipelineResult:
        """Execute ``graph`` once, reusing the session's cached state."""
        resolved = resolve_arch(arch) if arch is not None else self.arch
        ctx = ExecutionContext(
            arch=resolved,
            cost_model=self.cost_model(arch),
            functional=self.functional,
            policy=policy,
            optimizations=optimizations,
            memory=memory,
            tensors=tensors,
            stage_summaries=self.stage_summaries(graph, arch) if scheme == "cusync" else None,
        )
        return get_executor(scheme).run(graph, ctx)

    # ------------------------------------------------------------------
    def sweep(
        self,
        graph_or_work: Union[PipelineGraph, Iterable[Tuple[PipelineGraph, SweepPoint]]],
        policies: Sequence[Union[str, PolicySpec, PolicyAssignment]] = ("TileSync",),
        arches: Optional[Sequence[GpuArchitecture]] = None,
        schemes: Sequence[str] = ("cusync",),
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        cache: Optional[bool] = None,
    ) -> List[SweepResult]:
        """Evaluate every point of a sweep, in point order.

        ``graph_or_work`` is either one graph — expanded into the classic
        ``(scheme, policy, arch)`` product using ``policies`` / ``arches``
        / ``schemes`` — or an explicit iterable of ``(graph, SweepPoint)``
        pairs, which may mix several graphs and per-edge
        :class:`~repro.cusync.policies.PolicyAssignment` grids in one call
        (see :func:`sweep_policies`).  Non-cusync schemes ignore the policy
        axis (they contribute one point per arch).

        ``mode`` selects how points execute — ``"process"``, ``"thread"``,
        ``"serial"``, or ``None`` to pick automatically (processes when
        every graph pickles, otherwise a one-time warning plus the serial
        path).  Results are bit-identical across all modes: every path
        evaluates points through the same :func:`_sweep_point_result`,
        each point on an independent per-run binding (worker processes on
        pickled copies; threads serialize same-graph points on a per-graph
        lock because executors re-bind that graph's kernels per run).
        ``workers`` caps the pool size; ``workers=0`` is legacy shorthand
        for ``mode="serial"``.

        ``cache`` overrides the session's sweep-result cache for this call
        (``None`` keeps the session default): with caching on, points whose
        trace key — ``(graph, resolved arch, scheme, resolved policy)`` —
        was already simulated (earlier in this work list or in a previous
        sweep of this session) are *replayed* instead of re-simulated;
        replays are bit-identical apart from :attr:`SweepResult.cached` and
        carry the requested policy spelling / graph label.

        Sweeps measure timing only — functional simulation needs per-run
        input tensors and is not part of the point grid; use :meth:`run`
        with ``tensors=...`` for functional checks.
        """
        if self.functional:
            raise SimulationError(
                "Session.sweep measures timing only; run functional points "
                "individually with Session.run(graph, ..., tensors=...)"
            )
        if mode not in (None, "serial", "thread", "process"):
            raise SimulationError(
                f"unknown sweep mode {mode!r}; choose 'serial', 'thread' or 'process'"
            )
        work = self._normalize_work(graph_or_work, policies, arches, schemes)
        labels = self._graph_labels(work)
        use_cache = self._sweep_cache_enabled if cache is None else bool(cache)
        if not use_cache:
            return self._sweep_evaluate(work, labels, workers, mode)
        # Flush stale entries before consulting the cache: a registry change
        # may have re-pointed arch names at different architectures.
        self._check_registry_generation()

        # Partition the work into cache hits, in-flight duplicates of an
        # earlier miss in this same work list, and fresh points.  Only the
        # fresh points are simulated (by whichever mode applies); hits and
        # duplicates are replayed with the requested policy spelling and
        # graph label.
        outputs: List[Optional[SweepResult]] = [None] * len(work)
        pending: List[Tuple[PipelineGraph, SweepPoint]] = []
        pending_keys: List[Optional[Tuple]] = []
        pending_targets: List[int] = []
        pending_by_key: Dict[Tuple, int] = {}
        duplicates: List[Tuple[int, int]] = []  # (work position, pending position)
        for position, (graph, point) in enumerate(work):
            key = self._sweep_cache_key(graph, point)
            if key is not None:
                hit = self._sweep_cache.get(key)
                if hit is not None:
                    self.sweep_cache_hits += 1
                    outputs[position] = replace(
                        hit,
                        policy=point.policy,
                        graph_label=labels[id(graph)],
                        cached=True,
                    )
                    continue
                in_flight = pending_by_key.get(key)
                if in_flight is not None:
                    self.sweep_cache_hits += 1
                    duplicates.append((position, in_flight))
                    continue
                pending_by_key[key] = len(pending)
            self.sweep_cache_misses += 1
            pending.append((graph, point))
            pending_keys.append(key)
            pending_targets.append(position)
        fresh = self._sweep_evaluate(pending, labels, workers, mode) if pending else []
        for target, key, result in zip(pending_targets, pending_keys, fresh):
            outputs[target] = result
            if key is not None:
                self._sweep_cache[key] = result
        for position, pending_position in duplicates:
            graph, point = work[position]
            outputs[position] = replace(
                fresh[pending_position],
                policy=point.policy,
                graph_label=labels[id(graph)],
                cached=True,
            )
        return outputs

    def _sweep_evaluate(
        self,
        work: Sequence[Tuple[PipelineGraph, SweepPoint]],
        labels: Dict[int, str],
        workers: Optional[int],
        mode: Optional[str],
    ) -> List[SweepResult]:
        """Simulate every point of ``work`` under the selected mode."""
        if workers == 0 or mode == "serial" or len(work) <= 1:
            return self._sweep_serial(work, labels)
        if mode == "thread":
            return self._sweep_threaded(work, labels, workers)
        if mode == "process":
            culprits = self._pickle_culprits(work)
            if culprits:
                raise SimulationError(
                    "Session.sweep(mode='process') needs picklable graphs, but "
                    + "; ".join(culprits)
                    + ". Use mode='thread' for closure-carrying graphs."
                )
            return self._sweep_processes(work, labels, workers)
        # Automatic mode: processes when possible, else warn + serial.
        culprits = self._pickle_culprits(work, warn=True)
        if culprits:
            return self._sweep_serial(work, labels)
        return self._sweep_processes(work, labels, workers)

    # ------------------------------------------------------------------
    def _normalize_work(
        self,
        graph_or_work,
        policies,
        arches,
        schemes,
    ) -> List[Tuple[PipelineGraph, SweepPoint]]:
        if isinstance(graph_or_work, PipelineGraph):
            graph = graph_or_work
            arches = tuple(arches) if arches is not None else (self.arch,)
            work: List[Tuple[PipelineGraph, SweepPoint]] = []
            for arch in arches:
                for scheme in schemes:
                    if scheme == "cusync":
                        for policy in policies:
                            work.append(
                                (graph, SweepPoint(scheme=scheme, policy=policy, arch=arch))
                            )
                    else:
                        work.append((graph, SweepPoint(scheme=scheme, policy=None, arch=arch)))
            return work
        work = []
        for item in graph_or_work:
            graph, point = item
            if not isinstance(graph, PipelineGraph) or not isinstance(point, SweepPoint):
                raise SimulationError(
                    "Session.sweep work items must be (PipelineGraph, SweepPoint) "
                    f"pairs, got {item!r}"
                )
            work.append((graph, point))
        return work

    @staticmethod
    def _graph_labels(work: Sequence[Tuple[PipelineGraph, SweepPoint]]) -> Dict[int, str]:
        """One stable, *unique* label per distinct graph.

        The graph's ``name`` when set (suffixed with ``#n`` if two distinct
        graphs share a name), otherwise its position in the work list —
        results of a multi-graph sweep stay attributable either way.
        """
        labels: Dict[int, str] = {}
        taken: set = set()
        ordinal = 0
        for graph, _ in work:
            if id(graph) in labels:
                continue
            label = graph.name if graph.name else f"graph{ordinal}"
            if label in taken:
                suffix = 2
                while f"{label}#{suffix}" in taken:
                    suffix += 1
                label = f"{label}#{suffix}"
            labels[id(graph)] = label
            taken.add(label)
            ordinal += 1
        return labels

    def _pickle_culprits(
        self, work: Sequence[Tuple[PipelineGraph, SweepPoint]], warn: bool = False
    ) -> List[str]:
        culprits: List[str] = []
        seen: set = set()
        for graph, _ in work:
            if id(graph) in seen:
                continue
            seen.add(id(graph))
            culprit = _closure_culprit(graph)
            if culprit is not None:
                culprits.append(culprit)
                if warn:
                    _warn_serial_fallback(graph, culprit)
        return culprits

    def _sweep_serial(
        self,
        work: Sequence[Tuple[PipelineGraph, SweepPoint]],
        labels: Dict[int, str],
    ) -> List[SweepResult]:
        return [
            _sweep_point_result(
                graph,
                point,
                cost_model=self.cost_model(point.arch),
                stage_summaries=(
                    self.stage_summaries(graph, point.arch) if point.scheme == "cusync" else None
                ),
                graph_label=labels[id(graph)],
            )
            for graph, point in work
        ]

    def _sweep_threaded(
        self,
        work: Sequence[Tuple[PipelineGraph, SweepPoint]],
        labels: Dict[int, str],
        workers: Optional[int],
    ) -> List[SweepResult]:
        # Resolve each point's cost model and stage summaries serially up
        # front so worker threads only read prepared values (no per-point
        # registry/key work on the fan-out path); a per-graph lock
        # serializes points that share a graph (executors re-bind the
        # graph's kernels for every run, and two concurrent bindings of
        # one graph would race).
        locks: Dict[int, threading.Lock] = {}
        prepared = []
        for graph, point in work:
            cost_model = self.cost_model(point.arch)
            stage_summaries = (
                self.stage_summaries(graph, point.arch) if point.scheme == "cusync" else None
            )
            locks.setdefault(id(graph), threading.Lock())
            prepared.append((graph, point, cost_model, stage_summaries, labels[id(graph)]))

        def evaluate(item) -> SweepResult:
            graph, point, cost_model, stage_summaries, graph_label = item
            with locks[id(graph)]:
                return _sweep_point_result(
                    graph,
                    point,
                    cost_model=cost_model,
                    stage_summaries=stage_summaries,
                    graph_label=graph_label,
                )

        max_workers = workers if workers else min(8, len(work))
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(evaluate, prepared))

    def _sweep_processes(
        self,
        work: Sequence[Tuple[PipelineGraph, SweepPoint]],
        labels: Dict[int, str],
        workers: Optional[int],
    ) -> List[SweepResult]:
        payloads = [
            (graph, point, self.cost_model(point.arch), labels[id(graph)])
            for graph, point in work
        ]
        max_workers = workers if workers else min(8, len(work))
        pool_usable = True
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            try:
                # Probe that worker processes actually start (some sandboxes
                # forbid them); after a successful probe, genuine worker
                # crashes propagate to the caller instead of silently
                # re-running serially.
                pool.submit(int, 0).result()
            except (OSError, RuntimeError):
                pool_usable = False
            if pool_usable:
                return list(pool.map(_sweep_worker, payloads))
        return self._sweep_serial(work, labels)
