"""One-shot :func:`run` and the reusable :class:`Session`.

``run(graph, scheme=..., policy=...)`` executes an immutable
:class:`~repro.pipeline.graph.PipelineGraph` once.  A :class:`Session` is
the stateful companion for repeated execution: it caches one
:class:`~repro.gpu.costmodel.CostModel` per architecture and memoizes the
per-arch stage geometry (block counts and occupancies) that the automatic
W/R/T flag selection needs, so sweeping a graph over many
``(scheme, policy, arch)`` points re-derives nothing per point and never
rebuilds a kernel.

:meth:`Session.sweep` fans those points out over ``concurrent.futures``
worker processes when the graph is picklable (graphs whose range maps are
module-level functions are; ad-hoc closures fall back to the serial path),
and returns lightweight :class:`SweepResult` records either way — the
results are identical to a serial loop because the simulator is
deterministic and every point runs on an independent binding.
"""

from __future__ import annotations

import pickle
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.gpu.memory import GlobalMemory
from repro.cusync.handle import PipelineResult
from repro.cusync.optimizations import OptimizationFlags
from repro.pipeline.executors import (
    ExecutionContext,
    PolicySpec,
    StageSummary,
    get_executor,
    summarize_stages,
)
from repro.pipeline.graph import PipelineGraph


def run(
    graph: PipelineGraph,
    scheme: str = "cusync",
    policy: PolicySpec = "TileSync",
    optimizations: Optional[OptimizationFlags] = None,
    arch: GpuArchitecture = TESLA_V100,
    cost_model: Optional[CostModel] = None,
    functional: bool = False,
    memory: Optional[GlobalMemory] = None,
    tensors: Optional[Dict[str, np.ndarray]] = None,
) -> PipelineResult:
    """Execute ``graph`` once under ``scheme``.

    ``policy`` and ``optimizations`` only apply to the ``cusync`` scheme;
    ``optimizations=None`` selects the automatic per-edge W/R/T flags
    (Section IV-C).  The graph is never mutated and its kernels are never
    rebuilt — run the same graph again under any other configuration.
    """
    ctx = ExecutionContext(
        arch=arch,
        cost_model=cost_model,
        functional=functional,
        policy=policy,
        optimizations=optimizations,
        memory=memory,
        tensors=tensors,
    )
    return get_executor(scheme).run(graph, ctx)


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep: ``(scheme, policy, arch)``."""

    scheme: str
    policy: Optional[str]
    arch: GpuArchitecture

    def label(self) -> str:
        policy = f":{self.policy}" if self.policy else ""
        return f"{self.scheme}{policy}@{self.arch.name}"


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one sweep point, small enough to cross process boundaries."""

    scheme: str
    policy: Optional[str]
    arch_name: str
    total_time_us: float
    total_wait_time_us: float
    kernel_durations_us: Tuple[Tuple[str, float], ...]

    def duration_of(self, kernel_name: str) -> float:
        return dict(self.kernel_durations_us)[kernel_name]


def _sweep_point_result(
    graph: PipelineGraph,
    point: SweepPoint,
    cost_model: Optional[CostModel] = None,
    stage_summaries: Optional[Dict[str, StageSummary]] = None,
) -> SweepResult:
    """Evaluate one sweep point (always timing-only, never functional).

    ``cost_model`` / ``stage_summaries`` are optional memoized inputs the
    serial path passes from the session's caches; workers pass neither and
    derive both fresh.  Either way the values are identical (cost models
    for one arch are equal-valued, stage summaries are deterministic), so
    parallel and serial sweeps agree bit for bit.
    """
    ctx = ExecutionContext(
        arch=point.arch,
        cost_model=cost_model,
        functional=False,
        policy=point.policy if point.policy is not None else "TileSync",
        stage_summaries=stage_summaries if point.scheme == "cusync" else None,
    )
    result = get_executor(point.scheme).run(graph, ctx)
    trace = result.simulation.trace
    return SweepResult(
        scheme=point.scheme,
        policy=point.policy,
        arch_name=point.arch.name,
        total_time_us=result.total_time_us,
        total_wait_time_us=result.total_wait_time_us(),
        kernel_durations_us=tuple(
            (name, stats.duration_us) for name, stats in sorted(trace.kernels.items())
        ),
    )


def _sweep_worker(payload: Tuple[PipelineGraph, SweepPoint, Optional[CostModel]]) -> SweepResult:
    """Top-level worker entry point (must be picklable by name)."""
    graph, point, cost_model = payload
    return _sweep_point_result(graph, point, cost_model=cost_model)


class Session:
    """Reusable execution context: cached cost models, memoized geometry.

    A session binds no state to any graph; it only remembers derived,
    read-only facts (one cost model per architecture, per-arch stage
    summaries per graph) so repeated :meth:`run` calls and :meth:`sweep`
    points skip redundant derivation.
    """

    def __init__(
        self,
        arch: GpuArchitecture = TESLA_V100,
        functional: bool = False,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.arch = arch
        self.functional = functional
        #: One cost model per architecture, keyed by object identity (two
        #: distinct arch objects with equal fields get equal cost models,
        #: so identity keying is only a cache-efficiency concern).  The key
        #: objects are stored in the values: holding them alive guarantees
        #: an id() is never recycled while its entry exists (a session sees
        #: a handful of small arch objects, so the retention is trivial).
        self._cost_models: Dict[int, Tuple[GpuArchitecture, CostModel]] = {}
        #: Memoized stage geometry: graph -> {id(arch): (arch, summaries)}.
        #: Weakly keyed so a session that churns through many graphs (an
        #: autotuning loop, the bench harness) does not pin every dead
        #: graph and its kernels in memory.
        self._stage_summaries: "weakref.WeakKeyDictionary[PipelineGraph, Dict[int, Tuple[GpuArchitecture, Dict[str, StageSummary]]]]" = (
            weakref.WeakKeyDictionary()
        )
        if cost_model is not None:
            # A custom (e.g. calibrated) cost model for the session's own
            # architecture; other arches still get equal-valued defaults.
            self._cost_models[id(arch)] = (arch, cost_model)

    # ------------------------------------------------------------------
    def cost_model(self, arch: Optional[GpuArchitecture] = None) -> CostModel:
        """The session's cached cost model for ``arch`` (default: session arch)."""
        arch = arch if arch is not None else self.arch
        entry = self._cost_models.get(id(arch))
        if entry is None:
            entry = (arch, CostModel(arch=arch))
            self._cost_models[id(arch)] = entry
        return entry[1]

    def stage_summaries(
        self, graph: PipelineGraph, arch: Optional[GpuArchitecture] = None
    ) -> Dict[str, StageSummary]:
        """Memoized per-arch block counts / occupancies for ``graph``."""
        arch = arch if arch is not None else self.arch
        per_arch = self._stage_summaries.setdefault(graph, {})
        entry = per_arch.get(id(arch))
        if entry is None:
            cost_model = self.cost_model(arch)
            for stage in graph.topological_order:
                stage.kernel.cost_model = cost_model
            entry = (arch, summarize_stages(graph))
            per_arch[id(arch)] = entry
        return entry[1]

    # ------------------------------------------------------------------
    def run(
        self,
        graph: PipelineGraph,
        scheme: str = "cusync",
        policy: PolicySpec = "TileSync",
        optimizations: Optional[OptimizationFlags] = None,
        arch: Optional[GpuArchitecture] = None,
        memory: Optional[GlobalMemory] = None,
        tensors: Optional[Dict[str, np.ndarray]] = None,
    ) -> PipelineResult:
        """Execute ``graph`` once, reusing the session's cached state."""
        arch = arch if arch is not None else self.arch
        ctx = ExecutionContext(
            arch=arch,
            cost_model=self.cost_model(arch),
            functional=self.functional,
            policy=policy,
            optimizations=optimizations,
            memory=memory,
            tensors=tensors,
            stage_summaries=self.stage_summaries(graph, arch) if scheme == "cusync" else None,
        )
        return get_executor(scheme).run(graph, ctx)

    # ------------------------------------------------------------------
    def sweep(
        self,
        graph: PipelineGraph,
        policies: Sequence[str] = ("TileSync",),
        arches: Optional[Sequence[GpuArchitecture]] = None,
        schemes: Sequence[str] = ("cusync",),
        workers: Optional[int] = None,
    ) -> List[SweepResult]:
        """Run every ``(scheme, policy, arch)`` point of a sweep.

        Non-cusync schemes ignore the policy axis (they contribute one
        point per arch).  ``workers=0`` forces the serial in-process path;
        ``workers=None`` picks a process count automatically.  Results are
        returned in point order and are identical to a serial loop: both
        paths evaluate every point through the same
        :func:`_sweep_point_result`, each point on an independent per-run
        binding (worker processes operate on pickled copies of the graph).

        Sweeps measure timing only — functional simulation needs per-run
        input tensors and is not part of the point grid; use :meth:`run`
        with ``tensors=...`` for functional checks.
        """
        if self.functional:
            raise SimulationError(
                "Session.sweep measures timing only; run functional points "
                "individually with Session.run(graph, ..., tensors=...)"
            )
        arches = tuple(arches) if arches is not None else (self.arch,)
        points: List[SweepPoint] = []
        for arch in arches:
            for scheme in schemes:
                if scheme == "cusync":
                    for policy in policies:
                        points.append(SweepPoint(scheme=scheme, policy=policy, arch=arch))
                else:
                    points.append(SweepPoint(scheme=scheme, policy=None, arch=arch))

        if workers != 0 and len(points) > 1:
            payloads = self._picklable_payloads(graph, points, self.cost_model)
            if payloads is not None:
                max_workers = workers if workers is not None else min(8, len(points))
                pool_usable = True
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    try:
                        # Probe that worker processes actually start (some
                        # sandboxes forbid them); after a successful probe,
                        # genuine worker crashes propagate to the caller
                        # instead of silently re-running serially.
                        pool.submit(int, 0).result()
                    except (OSError, RuntimeError):
                        pool_usable = False
                    if pool_usable:
                        return list(pool.map(_sweep_worker, payloads))
        return [
            _sweep_point_result(
                graph,
                point,
                cost_model=self.cost_model(point.arch),
                stage_summaries=(
                    self.stage_summaries(graph, point.arch) if point.scheme == "cusync" else None
                ),
            )
            for point in points
        ]

    @staticmethod
    def _picklable_payloads(
        graph: PipelineGraph,
        points: List[SweepPoint],
        cost_model_for=None,
    ) -> Optional[List[Tuple[PipelineGraph, SweepPoint, Optional[CostModel]]]]:
        """Payloads for the process pool, or ``None`` if the graph cannot cross.

        Graphs whose kernels hold ad-hoc closures (locally defined range
        maps or transforms) cannot be pickled; sweeps of those graphs run
        serially in-process, which produces the same results.  Each payload
        carries the point's cost model so workers compute with exactly the
        values the serial path would use.
        """
        if not points:
            return []
        payloads = [
            (graph, point, cost_model_for(point.arch) if cost_model_for is not None else None)
            for point in points
        ]
        try:
            pickle.dumps(payloads[0])
        except Exception:
            return None
        return payloads
