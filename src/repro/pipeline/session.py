"""One-shot :func:`run` and the reusable :class:`Session`.

``run(graph, scheme=..., policy=...)`` executes an immutable
:class:`~repro.pipeline.graph.PipelineGraph` once.  A :class:`Session` is
the stateful companion for repeated execution: it caches one
:class:`~repro.gpu.costmodel.CostModel` per architecture and memoizes the
per-arch stage geometry (block counts and occupancies) that the automatic
W/R/T flag selection needs, so sweeping a graph over many
``(scheme, policy, arch)`` points re-derives nothing per point and never
rebuilds a kernel.

:meth:`Session.sweep` evaluates a grid of :class:`SweepPoint` work — either
the classic ``(scheme, policy, arch)`` product over one graph, or an
explicit iterable of ``(graph, SweepPoint)`` pairs mixing several graphs
and per-edge :class:`~repro.cusync.policies.PolicyAssignment` grids in one
call (:func:`sweep_policies` builds such grids).  Three execution modes are
available and produce bit-identical results, because the simulator is
deterministic and every point runs on an independent binding:

``mode="process"``
    Points fan out over ``concurrent.futures`` worker processes operating
    on pickled copies of the graphs.  Graphs whose range maps are ad-hoc
    closures cannot cross process boundaries.
``mode="thread"``
    Points fan out over a thread pool; points of the *same* graph
    serialize on a per-graph lock (executors re-bind that graph's kernels
    per run), so threads buy concurrency across graphs — exactly the
    multi-graph batch case — and work for closure-carrying graphs.
``mode="serial"``
    A plain in-process loop.

``mode=None`` picks ``process`` when every graph is picklable and
otherwise warns once (naming the offending stage and the ``mode="thread"``
alternative) before running serially.

Sweeps degrade gracefully under partial failure: per-point ``timeout=``
and ``retries=`` (with deterministic jittered exponential backoff) bound
every point's cost, ``on_error="raise"|"collect"|"skip"`` decides whether
an exhausted point aborts the sweep, surfaces as a structured
:class:`SweepFailure` in the result list, or is dropped.  A crashed worker
process (``BrokenProcessPool``) respawns the pool and requeues the points
that were in flight; a timed-out point is cancelled (the pool is recycled,
since a busy-waiting worker cannot be interrupted politely) and retried.
Failed points are never written to the sweep cache, and every result
payload is sanity-checked before it is accepted, so a corrupted worker
reply is retried rather than cached.  The recovery machinery is exercised
deterministically by :mod:`repro.testing.faults`.
"""

from __future__ import annotations

import itertools
import math
import pickle
import random
import threading
import time
import traceback as traceback_module
import warnings
import weakref
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait as futures_wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimulationError, SweepPointError
from repro.testing.faults import FaultPlan, active_fault_plan, run_point_with_faults
from repro.gpu.arch import (
    ArchLike,
    ArchSpec,
    GpuArchitecture,
    TESLA_V100,
    arch_registry_generation,
    canonical_arch_key,
    resolve_arch,
)
from repro.gpu.costmodel import CostModel
from repro.gpu.memory import GlobalMemory
from repro.cusync.handle import PipelineResult
from repro.cusync.optimizations import OptimizationFlags
from repro.cusync.policies import (
    PolicyAssignment,
    PolicySpec,
    policy_registry_generation,
)
from repro.pipeline.executors import (
    ExecutionContext,
    PolicyLike,
    StageSummary,
    get_executor,
    summarize_stages,
)
from repro.pipeline.graph import PipelineGraph

#: What a sweep point's policy axis accepts (``None`` for non-cusync points).
SweepPolicy = Union[None, str, PolicySpec, PolicyAssignment]


def run(
    graph: PipelineGraph,
    scheme: str = "cusync",
    policy: PolicyLike = "TileSync",
    optimizations: Optional[OptimizationFlags] = None,
    arch: ArchLike = TESLA_V100,
    cost_model: Optional[CostModel] = None,
    functional: bool = False,
    memory: Optional[GlobalMemory] = None,
    tensors: Optional[Dict[str, np.ndarray]] = None,
) -> PipelineResult:
    """Execute ``graph`` once under ``scheme``.

    ``policy`` and ``optimizations`` only apply to the ``cusync`` scheme;
    ``policy`` may be a family name, a
    :class:`~repro.cusync.policies.PolicySpec` or a per-edge
    :class:`~repro.cusync.policies.PolicyAssignment`; ``arch`` may be a
    registered architecture name, an
    :class:`~repro.gpu.arch.ArchSpec` or a raw
    :class:`~repro.gpu.arch.GpuArchitecture`;
    ``optimizations=None`` selects the automatic per-edge W/R/T flags
    (Section IV-C).  The graph is never mutated and its kernels are never
    rebuilt — run the same graph again under any other configuration.
    """
    ctx = ExecutionContext(
        arch=resolve_arch(arch),
        cost_model=cost_model,
        functional=functional,
        policy=policy,
        optimizations=optimizations,
        memory=memory,
        tensors=tensors,
    )
    return get_executor(scheme).run(graph, ctx)


def _policy_label(policy: SweepPolicy) -> str:
    if policy is None:
        return ""
    if isinstance(policy, str):
        return policy
    return policy.label()


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep: ``(scheme, policy, arch)``.

    ``policy`` may be a family name, a
    :class:`~repro.cusync.policies.PolicySpec` or a full per-edge
    :class:`~repro.cusync.policies.PolicyAssignment`; ``arch`` may be a
    registered architecture name, an :class:`~repro.gpu.arch.ArchSpec` or
    a :class:`~repro.gpu.arch.GpuArchitecture` instance (specs and names
    are the picklable, registry-resolved forms); non-cusync schemes use
    ``policy=None``.

    ``optimizations`` optionally pins the cusync W/R/T flags instead of
    the automatic per-arch selection (``None``).  It only applies to the
    ``cusync`` scheme, and it is part of the point's cache identity: a
    pinned-flags point never shares a cache or store entry with the
    automatic-selection point, even when the selected flags coincide.
    """

    scheme: str
    policy: SweepPolicy
    arch: ArchLike
    optimizations: Optional[OptimizationFlags] = None

    def resolved_arch(self) -> GpuArchitecture:
        """The concrete architecture this point runs on."""
        return resolve_arch(self.arch)

    def label(self) -> str:
        policy = _policy_label(self.policy)
        suffix = f":{policy}" if policy else ""
        flags = ""
        if self.optimizations is not None and self.scheme == "cusync":
            flags = self.optimizations.suffix or "+none"
        return f"{self.scheme}{suffix}{flags}@{self.resolved_arch().name}"


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one sweep point, small enough to cross process boundaries."""

    scheme: str
    policy: SweepPolicy
    arch_name: str
    total_time_us: float
    total_wait_time_us: float
    kernel_durations_us: Tuple[Tuple[str, float], ...]
    #: Which graph of a multi-graph sweep produced this result (the graph's
    #: ``name`` when set, otherwise its position in the work list).
    graph_label: str = ""
    #: Whether this result was replayed from the session's sweep cache
    #: instead of simulated fresh (see :class:`Session`).  Diagnostic
    #: metadata: replayed results are bit-identical to fresh ones, so the
    #: flag is excluded from equality.
    cached: bool = field(default=False, compare=False)

    @property
    def ok(self) -> bool:
        """``True`` — counterpart of :attr:`SweepFailure.ok` for filtering."""
        return True

    @property
    def policy_label(self) -> str:
        return _policy_label(self.policy)

    def duration_of(self, kernel_name: str) -> float:
        return dict(self.kernel_durations_us)[kernel_name]


@dataclass(frozen=True)
class SweepFailure:
    """A sweep point that exhausted its attempts (``on_error="collect"``).

    Small, structured and picklable: the point itself, how many attempts
    were burned, the final exception's type and repr, the formatted
    traceback of the final attempt (empty for parent-side failures like a
    vanished worker), and the total wall time the point consumed.  Mixed
    into the result list at the point's position, so a collect-mode sweep
    is always position-aligned with its work list; filter with the ``ok``
    flag::

        results = session.sweep(work, on_error="collect", retries=2)
        good = [r for r in results if r.ok]
        bad = [r for r in results if not r.ok]
    """

    point: SweepPoint
    graph_label: str
    attempts: int
    error_type: str
    #: ``repr`` of the exception that failed the final attempt.
    error: str
    #: Formatted traceback of the final attempt ('' when the failure was
    #: detected parent-side, e.g. a worker process that died silently).
    traceback: str = field(default="", compare=False)
    #: Total wall-clock seconds spent across all attempts of this point.
    elapsed_s: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        return False

    def label(self) -> str:
        try:
            return self.point.label()
        except Exception:
            return f"{self.point.scheme}@<unresolvable arch>"

    def describe(self) -> str:
        return (
            f"{self.graph_label or 'graph'}:{self.label()} failed after "
            f"{self.attempts} attempt(s) in {self.elapsed_s:.3f}s: "
            f"{self.error_type}: {self.error}"
        )


def _sweep_point_result(
    graph: PipelineGraph,
    point: SweepPoint,
    cost_model: Optional[CostModel] = None,
    stage_summaries: Optional[Dict[str, StageSummary]] = None,
    graph_label: str = "",
) -> SweepResult:
    """Evaluate one sweep point (always timing-only, never functional).

    ``cost_model`` / ``stage_summaries`` are optional memoized inputs the
    serial path passes from the session's caches; workers pass neither and
    derive both fresh.  Either way the values are identical (cost models
    for one arch are equal-valued, stage summaries are deterministic), so
    parallel and serial sweeps agree bit for bit.
    """
    arch = resolve_arch(point.arch)
    ctx = ExecutionContext(
        arch=arch,
        cost_model=cost_model,
        functional=False,
        policy=point.policy if point.policy is not None else "TileSync",
        optimizations=point.optimizations if point.scheme == "cusync" else None,
        stage_summaries=stage_summaries if point.scheme == "cusync" else None,
    )
    result = get_executor(point.scheme).run(graph, ctx)
    trace = result.simulation.trace
    return SweepResult(
        scheme=point.scheme,
        policy=point.policy,
        arch_name=arch.name,
        total_time_us=result.total_time_us,
        total_wait_time_us=result.total_wait_time_us(),
        kernel_durations_us=tuple(
            (name, stats.duration_us) for name, stats in sorted(trace.kernels.items())
        ),
        graph_label=graph_label,
    )


# ----------------------------------------------------------------------
# Fault-tolerant evaluation machinery
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _RecoveryPolicy:
    """How :meth:`Session.sweep` handles a failing point (internal)."""

    timeout: Optional[float] = None
    retries: int = 0
    backoff: float = 0.05
    on_error: str = "raise"
    fault_plan: Optional[FaultPlan] = None

    @property
    def max_attempts(self) -> int:
        return self.retries + 1


@dataclass(frozen=True)
class _WorkerFailure:
    """A failure captured *inside* a worker, transported back as data.

    The worker formats the traceback and reprs the exception before
    pickling, so an unpicklable exception type raised by a cost model or
    kernel surfaces as the original traceback text instead of an opaque
    ``PicklingError`` in the parent.  The exception object itself rides
    along only when it pickles cleanly (so ``on_error="raise"`` can
    re-raise the original).
    """

    error_type: str
    error_repr: str
    traceback_text: str
    exception: Optional[BaseException] = None


class _PointFailure:
    """Internal carrier pairing a public SweepFailure with the original
    exception object (when transportable) for ``on_error="raise"``."""

    __slots__ = ("failure", "exception")

    def __init__(self, failure: SweepFailure, exception: Optional[BaseException]):
        self.failure = failure
        self.exception = exception


def _capture_worker_failure(exc: BaseException) -> _WorkerFailure:
    transportable: Optional[BaseException] = None
    try:
        pickle.loads(pickle.dumps(exc))
        transportable = exc
    except Exception:
        transportable = None
    return _WorkerFailure(
        error_type=type(exc).__name__,
        error_repr=repr(exc),
        traceback_text=traceback_module.format_exc(),
        exception=transportable,
    )


def _validate_sweep_result(result: object) -> SweepResult:
    """Reject corrupt result payloads (NaN/negative times, wrong type).

    The simulator only ever produces finite non-negative times, so a
    payload that fails these checks was damaged in transit (or by an
    injected ``corrupt_result`` fault) and must be retried, never cached.
    """
    if not isinstance(result, SweepResult):
        raise SimulationError(
            f"sweep worker returned {type(result).__name__}, expected SweepResult"
        )
    if not math.isfinite(result.total_time_us) or result.total_time_us < 0.0:
        raise SimulationError(
            f"corrupt sweep result: total_time_us={result.total_time_us!r}"
        )
    if not math.isfinite(result.total_wait_time_us) or result.total_wait_time_us < 0.0:
        raise SimulationError(
            f"corrupt sweep result: total_wait_time_us={result.total_wait_time_us!r}"
        )
    for name, duration in result.kernel_durations_us:
        if not math.isfinite(duration) or duration < 0.0:
            raise SimulationError(
                f"corrupt sweep result: kernel {name!r} duration {duration!r}"
            )
    return result


def _backoff_delay(base: float, position: int, attempt: int) -> float:
    """Jittered exponential backoff before retry ``attempt`` (1-based).

    Deterministic: the jitter is drawn from an RNG seeded on the point's
    position and the attempt number, so reruns of a failing sweep pause
    identically (reproducible chaos tests) while distinct points still
    spread their retries apart.
    """
    if base <= 0.0 or attempt <= 0:
        return 0.0
    rng = random.Random((position * 1_000_003) ^ attempt)
    return base * (2 ** (attempt - 1)) * (0.5 + rng.random())


def _sweep_worker(payload) -> Union[SweepResult, _WorkerFailure]:
    """Top-level worker entry point (must be picklable by name).

    Applies the payload's fault plan (chaos testing) and catches every
    evaluation failure, returning it as a :class:`_WorkerFailure` — the
    parent decides whether to retry, collect or raise.
    """
    graph, point, cost_model, graph_label, fault_plan, position, attempt = payload
    try:
        return run_point_with_faults(
            fault_plan,
            position,
            attempt,
            lambda: _sweep_point_result(
                graph, point, cost_model=cost_model, graph_label=graph_label
            ),
            in_worker_process=True,
        )
    except Exception as exc:
        return _capture_worker_failure(exc)


# ----------------------------------------------------------------------
# Picklability diagnosis for the process mode
# ----------------------------------------------------------------------
def _picklable(value) -> bool:
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True


def _closure_culprit(graph: PipelineGraph) -> Optional[str]:
    """Human-readable description of what keeps ``graph`` off the process pool."""
    if _picklable(graph):
        return None
    for edge in graph.edges:
        if edge.range_map is not None and not _picklable(edge.range_map):
            map_name = getattr(edge.range_map, "__qualname__", repr(edge.range_map))
            return (
                f"edge {edge.producer!r} -> {edge.consumer!r} carries the "
                f"closure range map {map_name!r}"
            )
    for stage in graph.stages:
        if not _picklable(stage.kernel):
            return f"stage {stage.name!r} holds an unpicklable kernel"
    return "the graph object itself cannot be pickled"


def _evict_graph_entries(session_ref: "weakref.ref[Session]", token: int) -> None:
    """Drop a dead token-keyed graph's sweep-cache entries (finalize callback).

    Only graphs *without* a structural fingerprint (closure range maps,
    ad-hoc callables) key by per-process token; their entries are keyed by
    object identity, so once the graph dies they could never be hit again
    and are evicted.  Fingerprint-keyed entries are deliberately **not**
    evicted on graph death: an equal graph rebuilt later replays them —
    that sharing is the point of structural keying (use
    :meth:`Session.clear_sweep_cache` to bound memory).  The callback
    holds the session weakly so a finalizer on a long-lived graph does not
    pin it.
    """
    session = session_ref()
    if session is not None:
        cache = session._sweep_cache
        dead = ("token", token)
        for key in [key for key in cache if key[0] == dead]:
            del cache[key]


#: Culprit strings already warned about (the serial fallback warns once per
#: distinct cause per process, not once per sweep call).
_FALLBACK_WARNED: set = set()


def _warn_serial_fallback(graph: PipelineGraph, culprit: str) -> None:
    key = (graph.name or "", culprit)
    if key in _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED.add(key)
    label = graph.name or graph.describe()
    warnings.warn(
        f"Session.sweep: graph {label} cannot be sent to worker processes "
        f"({culprit}); running this sweep serially. Pass mode='thread' to "
        "sweep closure-carrying graphs concurrently (multi-graph batches "
        "parallelize across graphs), or make the range maps module-level "
        "functions to enable mode='process'.",
        RuntimeWarning,
        stacklevel=3,
    )


# ----------------------------------------------------------------------
# Sweep-grid helpers
# ----------------------------------------------------------------------
def sweep_policies(
    graph: PipelineGraph,
    families: Sequence[Union[str, PolicySpec]] = ("TileSync", "RowSync"),
    arches: Sequence[ArchLike] = (TESLA_V100,),
    scheme: str = "cusync",
    mixed: bool = False,
) -> List[Tuple[PipelineGraph, SweepPoint]]:
    """Build ``(graph, SweepPoint)`` work covering a policy grid.

    With ``mixed=False`` (the default) one uniform point per family is
    produced.  With ``mixed=True`` the full cartesian product of
    ``families`` over the graph's edges is generated as per-edge
    :class:`~repro.cusync.policies.PolicyAssignment` grids — the uniform
    points are the product's diagonal, so they are always included.  The
    grid has ``len(families) ** len(edges)`` points per arch; it is the
    caller's job to keep that tractable (prune ``families`` or sweep a
    subgraph).  Concatenate the work of several graphs and hand it to
    :meth:`Session.sweep` for a multi-graph batch::

        work = sweep_policies(mlp, ("TileSync", "RowSync"), mixed=True) \\
             + sweep_policies(attention, ("TileSync", "StridedTileSync"))
        results = session.sweep(work, mode="thread")
    """
    specs = [PolicySpec.coerce(family) for family in families]
    edges = [(edge.producer, edge.consumer, edge.tensor) for edge in graph.edges]
    work: List[Tuple[PipelineGraph, SweepPoint]] = []
    for arch in arches:
        if not mixed or not edges:
            for spec in specs:
                work.append((graph, SweepPoint(scheme=scheme, policy=spec, arch=arch)))
            continue
        for combination in itertools.product(specs, repeat=len(edges)):
            uniform = all(spec == combination[0] for spec in combination)
            if uniform:
                policy: SweepPolicy = combination[0]
            else:
                policy = PolicyAssignment(
                    default=combination[0],
                    edges={key: spec for key, spec in zip(edges, combination)},
                )
            work.append((graph, SweepPoint(scheme=scheme, policy=policy, arch=arch)))
    return work


def sweep_archs(
    graphs: Union[PipelineGraph, Sequence[PipelineGraph]],
    arches: Sequence[ArchLike] = ("V100", "A100"),
    policies: Sequence[Union[str, PolicySpec, PolicyAssignment]] = ("TileSync",),
    schemes: Sequence[str] = ("cusync",),
) -> List[Tuple[PipelineGraph, SweepPoint]]:
    """Build ``(graph, SweepPoint)`` work covering an architecture grid.

    For every graph, the full ``arch x scheme (x policy)`` product is
    generated; non-cusync schemes contribute one point per architecture
    (they have no policy axis).  Architecture names and
    :class:`~repro.gpu.arch.ArchSpec` values are kept as specs inside the
    points — hashable and picklable, resolving against the registry in
    whatever process evaluates them — while raw
    :class:`~repro.gpu.arch.GpuArchitecture` instances pass through for
    the legacy path.  Feed the work to :meth:`Session.sweep` in any of the
    three modes::

        work = sweep_archs([mlp, attention], ("V100", "A100", "H100-SXM"),
                           policies=("TileSync", "RowSync"),
                           schemes=("streamsync", "cusync"))
        results = session.sweep(work, mode="thread")
    """
    graph_list = [graphs] if isinstance(graphs, PipelineGraph) else list(graphs)
    arch_axis: List[ArchLike] = [
        arch if isinstance(arch, GpuArchitecture) else ArchSpec.coerce(arch)
        for arch in arches
    ]
    work: List[Tuple[PipelineGraph, SweepPoint]] = []
    for graph in graph_list:
        for arch in arch_axis:
            for scheme in schemes:
                if scheme == "cusync":
                    for policy in policies:
                        work.append(
                            (graph, SweepPoint(scheme=scheme, policy=policy, arch=arch))
                        )
                else:
                    work.append((graph, SweepPoint(scheme=scheme, policy=None, arch=arch)))
    return work


class Session:
    """Reusable execution context: cached cost models, memoized geometry.

    A session binds no state to any graph; it only remembers derived,
    read-only facts (one cost model per architecture, per-arch stage
    summaries per graph) so repeated :meth:`run` calls and :meth:`sweep`
    points skip redundant derivation.

    On top of the derivation caches, :meth:`sweep` keeps a **result cache**:
    the simulator is deterministic and sweep points are functional (timing
    only, no per-run memory or tensors), so a point's
    :class:`SweepResult` is fully determined by its trace key — the tuple
    ``(graph, resolved arch key, scheme, resolved policy assignment)``,
    where the graph is identified by its **structural fingerprint**
    (:meth:`~repro.pipeline.graph.PipelineGraph.structural_fingerprint`),
    so equal graphs — rebuilt in this process or built in another one —
    share entries (graphs without a portable fingerprint fall back to
    per-process identity tokens), and the policy lowers through
    :meth:`~repro.cusync.policies.PolicyAssignment.coerce` so equivalent
    spellings (``"TileSync"``, ``PolicySpec("TileSync")``, a uniform
    assignment) share one entry.  Duplicate points within one work list
    simulate once, and repeated sweeps over the same graphs replay cached
    results — bit-identical apart from the :attr:`SweepResult.cached` flag
    and the requested policy spelling/graph label.  Disable with
    ``Session(sweep_cache=False)`` (or per call, ``sweep(..., cache=False)``)
    for memory-constrained runs; :attr:`sweep_cache_hits` /
    :attr:`sweep_cache_misses` count replays vs simulations.

    ``result_store`` adds a **persistent tier** under the in-memory cache
    (see :mod:`repro.service.store`): points whose trace key is fully
    portable (:meth:`sweep_store_key`) consult the store on a cache miss
    and write fresh successful results through to it, so a brand-new
    process replays a previously swept grid bit-identically with zero
    simulations.  Store hits count in :attr:`sweep_store_hits`; failures
    are never persisted, and store errors (corrupt entries, I/O) degrade
    to simulation, counted in :attr:`sweep_store_errors`.
    """

    def __init__(
        self,
        arch: ArchLike = TESLA_V100,
        functional: bool = False,
        cost_model: Optional[CostModel] = None,
        sweep_cache: bool = True,
        result_store: Optional["SweepResultStoreLike"] = None,
    ) -> None:
        #: The session's default architecture, always resolved to a concrete
        #: instance (names and :class:`~repro.gpu.arch.ArchSpec` values are
        #: accepted and looked up in the registry).
        self.arch = resolve_arch(arch)
        self.functional = functional
        #: One cost model per architecture, keyed by the *resolved*
        #: :class:`~repro.gpu.arch.ArchSpec` when the architecture is
        #: registry-addressable (names, specs, and instances value-equal to
        #: a registered preset all share one entry) and by object identity
        #: for unregistered instances (the legacy shim path).  The arch
        #: objects are stored in the values: holding them alive guarantees
        #: an id() key is never recycled while its entry exists.
        self._cost_models: Dict[object, Tuple[GpuArchitecture, CostModel]] = {}
        #: Memoized stage geometry: graph -> {arch key: (arch, summaries)},
        #: with the same arch keying as the cost models.  Weakly keyed so a
        #: session that churns through many graphs (an autotuning loop, the
        #: bench harness) does not pin every dead graph and its kernels in
        #: memory.
        self._stage_summaries: "weakref.WeakKeyDictionary[PipelineGraph, Dict[object, Tuple[GpuArchitecture, Dict[str, StageSummary]]]]" = (
            weakref.WeakKeyDictionary()
        )
        #: The session's own (original arch argument, custom cost model),
        #: re-pinned into the cache whenever a registry change flushes it.
        self._session_cost_model: Optional[Tuple[ArchLike, CostModel]] = (
            (arch, cost_model) if cost_model is not None else None
        )
        #: Registry state the spec-keyed caches were built against; when a
        #: register_arch/unregister_arch call changes resolutions, the
        #: derived caches are flushed so a run never pairs a new
        #: architecture instance with a stale cost model.
        self._registry_generation = arch_registry_generation()
        self._policy_registry_generation = policy_registry_generation()
        #: Sweep-result cache: trace key -> SweepResult (see class docs).
        self._sweep_cache_enabled = bool(sweep_cache)
        self._sweep_cache: Dict[Tuple, SweepResult] = {}
        #: Optional persistent result tier consulted under the in-memory
        #: cache (see :mod:`repro.service.store`): any object with
        #: ``get(key) -> Optional[SweepResult]`` / ``put(key, result)``.
        #: Only points with a fully portable trace key (structural graph
        #: fingerprint + registry-addressed arch) use it; lookups and
        #: writes are best-effort and never fail a sweep.
        self.result_store = result_store
        #: Fallback per-graph tokens for graphs *without* a structural
        #: fingerprint (closure range maps).  Weakly keyed, and tokens are
        #: never reused, so a dead graph's stale cache entries can never
        #: be hit by a new graph that recycles its id().
        self._graph_tokens: "weakref.WeakKeyDictionary[PipelineGraph, int]" = (
            weakref.WeakKeyDictionary()
        )
        self._graph_token_counter = itertools.count()
        #: How many sweep points were replayed from / simulated into the
        #: result cache over the session's lifetime, plus how many were
        #: replayed from / persisted into the result store.
        self.sweep_cache_hits = 0
        self.sweep_cache_misses = 0
        self.sweep_store_hits = 0
        self.sweep_store_errors = 0
        self._pin_session_cost_model()

    def _pin_session_cost_model(self) -> None:
        if self._session_cost_model is None:
            return
        # Stored under both the key of the *original* arch argument (a
        # spec, when one was passed) and of the resolved instance, so
        # explicit lookups by either form hit the calibrated model.
        arch_arg, cost_model = self._session_cost_model
        entry = (self.arch, cost_model)
        self._cost_models[canonical_arch_key(arch_arg)] = entry
        self._cost_models[canonical_arch_key(self.arch)] = entry

    def _check_registry_generation(self) -> None:
        generation = arch_registry_generation()
        if generation != self._registry_generation:
            self._registry_generation = generation
            self._cost_models.clear()
            self._stage_summaries.clear()
            # Arch keys may resolve differently now; cached sweep results
            # keyed on the old resolutions must not be replayed.
            self._sweep_cache.clear()
            self._pin_session_cost_model()
        # Policy specs also resolve through a mutable registry: a
        # re-registered family changes what a cached point's policy key
        # *means*, so registry mutations flush the result cache too.
        policy_generation = policy_registry_generation()
        if policy_generation != self._policy_registry_generation:
            self._policy_registry_generation = policy_generation
            self._sweep_cache.clear()

    # ------------------------------------------------------------------
    # Sweep-result cache
    # ------------------------------------------------------------------
    def clear_sweep_cache(self) -> None:
        """Drop every cached sweep result (the derivation caches survive)."""
        self._sweep_cache.clear()

    @property
    def sweep_cache_size(self) -> int:
        return len(self._sweep_cache)

    def _graph_token(self, graph: PipelineGraph) -> int:
        token = self._graph_tokens.get(graph)
        if token is None:
            token = next(self._graph_token_counter)
            self._graph_tokens[graph] = token
            # When a token-keyed graph dies its entries can never be hit
            # again; evict them so sessions sweeping many transient
            # unfingerprintable graphs don't accumulate unreachable results.
            weakref.finalize(graph, _evict_graph_entries, weakref.ref(self), token)
        return token

    def _graph_key(self, graph: PipelineGraph) -> Tuple:
        """The graph component of a trace key.

        Graphs with a structural fingerprint key by *content*: equal
        graphs — rebuilt in this process or built in another one — share
        cache (and result-store) entries.  Graphs without one (closure
        range maps, ad-hoc callables) fall back to a per-process,
        never-reused token whose entries are evicted when the graph dies.
        """
        digest = graph.structural_fingerprint()
        if digest is not None:
            return ("graph", digest)
        return ("token", self._graph_token(graph))

    def _sweep_cache_key(self, graph: PipelineGraph, point: SweepPoint) -> Optional[Tuple]:
        """The point's trace key, or ``None`` when it cannot be cached.

        The graph axis keys by structural fingerprint when it has one
        (see :meth:`_graph_key`); the arch axis keys through
        :func:`canonical_arch_key` (the same keying as the cost-model
        cache, whose entries keep unregistered instances alive so an
        id-based key is never recycled while cache entries exist); the
        policy axis lowers to a
        :class:`~repro.cusync.policies.PolicyAssignment` so equivalent
        spellings share an entry.  Non-cusync schemes have no policy axis.
        """
        try:
            if point.scheme == "cusync" and point.policy is not None:
                policy_key = PolicyAssignment.coerce(point.policy)
            else:
                policy_key = None
            arch_key = canonical_arch_key(point.arch if point.arch is not None else self.arch)
        except Exception:
            return None
        key = (self._graph_key(graph), arch_key, point.scheme, policy_key)
        if point.scheme == "cusync" and point.optimizations is not None:
            # Pinned W/R/T flags extend the key; automatic selection keeps
            # the historical four-tuple so existing entries stay addressable.
            key += (point.optimizations,)
        return key

    def sweep_store_key(self, graph: PipelineGraph, point: SweepPoint) -> Optional[Tuple]:
        """The point's *persistent* trace key, or ``None`` when it has none.

        A store key is the fully portable twin of the in-memory trace key:
        nested tuples of primitives only, identical in every process, so it
        can address entries of an on-disk result store
        (:class:`repro.service.store.SweepResultStore`).  Points key by
        the graph's structural fingerprint, the canonicalized
        registry-addressed architecture, the scheme, and the coerced
        policy assignment.  Points without a portable identity — graphs
        with closure range maps, raw unregistered
        :class:`~repro.gpu.arch.GpuArchitecture` instances, exotic policy
        parameters — return ``None`` and simply bypass the store tier.
        """
        from repro.pipeline.structural import UnportableValueError, canonicalize

        digest = graph.structural_fingerprint()
        if digest is None:
            return None
        try:
            if point.scheme == "cusync" and point.policy is not None:
                policy_key = canonicalize(PolicyAssignment.coerce(point.policy))
            else:
                policy_key = ("none",)
            arch_key = canonical_arch_key(point.arch if point.arch is not None else self.arch)
            if not isinstance(arch_key, ArchSpec):
                return None  # unregistered instance: per-process identity only
            arch_canonical = canonicalize(arch_key)
        except Exception:
            return None
        key = ("sweep-result/v1", digest, arch_canonical, point.scheme, policy_key)
        if point.scheme == "cusync" and point.optimizations is not None:
            key += (canonicalize(point.optimizations),)
        return key

    def sweep_trace_key(self, graph: PipelineGraph, point: SweepPoint) -> Optional[Tuple]:
        """The point's in-memory trace key, or ``None`` when it has none.

        Two points with equal trace keys replay the same result; service
        fronts use this as the identity under which duplicate in-flight
        points coalesce.  Registry generations are checked first, so a key
        handed out is valid against the current registries.  Unlike
        :meth:`sweep_store_key` the trace key exists for most points (it
        falls back to per-process graph tokens and arch identities) —
        ``None`` means the point is uncacheable and every submission must
        evaluate independently.
        """
        self._check_registry_generation()
        return self._sweep_cache_key(graph, point)

    def cached_sweep_result(
        self, graph: PipelineGraph, point: SweepPoint
    ) -> Optional[SweepResult]:
        """The in-memory cached result for ``(graph, point)``, or ``None``.

        A raw cache probe for service fronts and tooling: registry
        generations are checked first (stale entries flush), but the disk
        store is *not* consulted and no counters move.  The returned
        result is the cached entry itself — replay spelling/label
        adjustments are the caller's job.
        """
        self._check_registry_generation()
        key = self._sweep_cache_key(graph, point)
        if key is None:
            return None
        return self._sweep_cache.get(key)

    def adopt_sweep_result(
        self, graph: PipelineGraph, point: SweepPoint, result: SweepResult
    ) -> bool:
        """Install ``result`` under ``(graph, point)``'s trace key.

        Service fronts use this to warm the in-memory tier with results
        they obtained elsewhere (the disk store, a remote worker).  Only
        successful :class:`SweepResult` values are accepted — failures are
        never cached, matching :meth:`sweep`.  Returns ``False`` when the
        session's cache is disabled or the point has no trace key.
        """
        if not isinstance(result, SweepResult):
            raise SimulationError(
                f"adopt_sweep_result expects a SweepResult, got {type(result).__name__}"
            )
        if not self._sweep_cache_enabled:
            return False
        self._check_registry_generation()
        key = self._sweep_cache_key(graph, point)
        if key is None:
            return False
        self._sweep_cache[key] = result
        return True

    def _store_lookup(
        self, graph: PipelineGraph, point: SweepPoint
    ) -> Optional[SweepResult]:
        """Best-effort read of the persistent tier (``None`` = miss)."""
        if self.result_store is None:
            return None
        key = self.sweep_store_key(graph, point)
        if key is None:
            return None
        try:
            result = self.result_store.get(key)
        except Exception:
            self.sweep_store_errors += 1
            return None
        return result if isinstance(result, SweepResult) else None

    def _store_write(
        self, graph: PipelineGraph, point: SweepPoint, result: SweepResult
    ) -> None:
        """Best-effort write-through of a fresh result to the persistent tier."""
        if self.result_store is None:
            return
        key = self.sweep_store_key(graph, point)
        if key is None:
            return
        try:
            self.result_store.put(key, result)
        except Exception:
            self.sweep_store_errors += 1

    # ------------------------------------------------------------------
    def _arch_entry(self, arch: Optional[ArchLike]) -> Tuple[object, GpuArchitecture]:
        """Resolve an architecture axis value to its (cache key, instance)."""
        self._check_registry_generation()
        if arch is None:
            return canonical_arch_key(self.arch), self.arch
        return canonical_arch_key(arch), resolve_arch(arch)

    def cost_model(self, arch: Optional[ArchLike] = None) -> CostModel:
        """The session's cached cost model for ``arch`` (default: session arch)."""
        key, resolved = self._arch_entry(arch)
        entry = self._cost_models.get(key)
        if entry is None:
            entry = (resolved, CostModel(arch=resolved))
            self._cost_models[key] = entry
        return entry[1]

    def stage_summaries(
        self, graph: PipelineGraph, arch: Optional[ArchLike] = None
    ) -> Dict[str, StageSummary]:
        """Memoized per-arch block counts / occupancies for ``graph``."""
        key, resolved = self._arch_entry(arch)
        per_arch = self._stage_summaries.setdefault(graph, {})
        entry = per_arch.get(key)
        if entry is None:
            cost_model = self.cost_model(arch)
            for stage in graph.topological_order:
                stage.kernel.cost_model = cost_model
            entry = (resolved, summarize_stages(graph))
            per_arch[key] = entry
        return entry[1]

    # ------------------------------------------------------------------
    def run(
        self,
        graph: PipelineGraph,
        scheme: str = "cusync",
        policy: PolicyLike = "TileSync",
        optimizations: Optional[OptimizationFlags] = None,
        arch: Optional[ArchLike] = None,
        memory: Optional[GlobalMemory] = None,
        tensors: Optional[Dict[str, np.ndarray]] = None,
    ) -> PipelineResult:
        """Execute ``graph`` once, reusing the session's cached state."""
        resolved = resolve_arch(arch) if arch is not None else self.arch
        ctx = ExecutionContext(
            arch=resolved,
            cost_model=self.cost_model(arch),
            functional=self.functional,
            policy=policy,
            optimizations=optimizations,
            memory=memory,
            tensors=tensors,
            stage_summaries=self.stage_summaries(graph, arch) if scheme == "cusync" else None,
        )
        return get_executor(scheme).run(graph, ctx)

    # ------------------------------------------------------------------
    def sweep_point(
        self,
        graph: PipelineGraph,
        point: SweepPoint,
        cache: Optional[bool] = None,
    ) -> SweepResult:
        """Evaluate one ``(graph, point)`` through the sweep caches.

        The single-point form of :meth:`sweep` (serial mode,
        ``on_error="raise"``): repeated evaluations of the same trace key
        replay from the in-memory cache (and the result store, when one
        is attached) instead of re-simulating.  This is the hot call of
        request-level serving loops (:mod:`repro.serving`), where most
        iterations land on an already-simulated batch shape.
        """
        return self.sweep([(graph, point)], mode="serial", cache=cache)[0]

    # ------------------------------------------------------------------
    def sweep(
        self,
        graph_or_work: Union[PipelineGraph, Iterable[Tuple[PipelineGraph, SweepPoint]]],
        policies: Sequence[Union[str, PolicySpec, PolicyAssignment]] = ("TileSync",),
        arches: Optional[Sequence[GpuArchitecture]] = None,
        schemes: Sequence[str] = ("cusync",),
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        cache: Optional[bool] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        on_error: str = "raise",
    ) -> List[Union[SweepResult, "SweepFailure"]]:
        """Evaluate every point of a sweep, in point order.

        ``graph_or_work`` is either one graph — expanded into the classic
        ``(scheme, policy, arch)`` product using ``policies`` / ``arches``
        / ``schemes`` — or an explicit iterable of ``(graph, SweepPoint)``
        pairs, which may mix several graphs and per-edge
        :class:`~repro.cusync.policies.PolicyAssignment` grids in one call
        (see :func:`sweep_policies`).  Non-cusync schemes ignore the policy
        axis (they contribute one point per arch).

        ``mode`` selects how points execute — ``"process"``, ``"thread"``,
        ``"serial"``, or ``None`` to pick automatically (processes when
        every graph pickles, otherwise a one-time warning plus the serial
        path).  Results are bit-identical across all modes: every path
        evaluates points through the same :func:`_sweep_point_result`,
        each point on an independent per-run binding (worker processes on
        pickled copies; threads serialize same-graph points on a per-graph
        lock because executors re-bind that graph's kernels per run).
        ``workers`` caps the pool size; ``workers=0`` is legacy shorthand
        for ``mode="serial"``.

        ``cache`` overrides the session's sweep-result cache for this call
        (``None`` keeps the session default): with caching on, points whose
        trace key — ``(graph, resolved arch, scheme, resolved policy)`` —
        was already simulated (earlier in this work list or in a previous
        sweep of this session) are *replayed* instead of re-simulated;
        replays are bit-identical apart from :attr:`SweepResult.cached` and
        carry the requested policy spelling / graph label.  Only successful
        results are ever cached — a failing point re-simulates on the next
        sweep instead of replaying a poisoned entry.

        **Fault tolerance.**  ``retries`` re-evaluates a failing point up
        to that many extra times, pausing a deterministic jittered
        exponential backoff (base ``backoff`` seconds) between attempts.
        ``timeout`` bounds each attempt's wall-clock seconds: in process
        mode a timed-out point's worker is killed (the pool is recycled and
        other in-flight points requeued without charge); in serial/thread
        mode the check is cooperative — the attempt's result is discarded
        once it finally returns.  A worker process that dies
        (``BrokenProcessPool``) respawns the pool; every point that was in
        flight is charged one attempt and requeued.  ``on_error`` decides
        what happens to a point that exhausts its attempts:

        ``"raise"`` (default)
            The original exception is re-raised (with the worker traceback
            attached as a note when it crossed a process boundary); points
            whose exception cannot be transported raise
            :class:`~repro.errors.SweepPointError` carrying the original
            traceback text.
        ``"collect"``
            The point surfaces as a structured :class:`SweepFailure` at its
            position in the result list.
        ``"skip"``
            The point is silently dropped from the result list.

        Sweeps measure timing only — functional simulation needs per-run
        input tensors and is not part of the point grid; use :meth:`run`
        with ``tensors=...`` for functional checks.
        """
        if self.functional:
            raise SimulationError(
                "Session.sweep measures timing only; run functional points "
                "individually with Session.run(graph, ..., tensors=...)"
            )
        if mode not in (None, "serial", "thread", "process"):
            raise SimulationError(
                f"unknown sweep mode {mode!r}; choose 'serial', 'thread' or 'process'"
            )
        if on_error not in ("raise", "collect", "skip"):
            raise SimulationError(
                f"unknown on_error policy {on_error!r}; choose 'raise', 'collect' or 'skip'"
            )
        if retries < 0:
            raise SimulationError(f"retries must be non-negative, got {retries}")
        if timeout is not None and timeout <= 0:
            raise SimulationError(f"timeout must be positive, got {timeout}")
        recovery = _RecoveryPolicy(
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            on_error=on_error,
            fault_plan=active_fault_plan(),
        )
        work = self._normalize_work(graph_or_work, policies, arches, schemes)
        labels = self._graph_labels(work)
        use_cache = self._sweep_cache_enabled if cache is None else bool(cache)
        if not use_cache:
            outputs = self._sweep_evaluate(
                work, labels, workers, mode, recovery, list(range(len(work)))
            )
            return self._finalize_outputs(outputs, recovery)
        # Flush stale entries before consulting the cache: a registry change
        # may have re-pointed arch names at different architectures.
        self._check_registry_generation()

        # Partition the work into cache hits, in-flight duplicates of an
        # earlier miss in this same work list, and fresh points.  Only the
        # fresh points are simulated (by whichever mode applies); hits and
        # duplicates are replayed with the requested policy spelling and
        # graph label.  Fault-plan positions refer to the *original* work
        # list, so injected faults target the same points whether or not
        # the cache absorbed their neighbours.
        outputs: List[object] = [None] * len(work)
        pending: List[Tuple[PipelineGraph, SweepPoint]] = []
        pending_keys: List[Optional[Tuple]] = []
        pending_targets: List[int] = []
        pending_by_key: Dict[Tuple, int] = {}
        duplicates: List[Tuple[int, int]] = []  # (work position, pending position)
        for position, (graph, point) in enumerate(work):
            key = self._sweep_cache_key(graph, point)
            if key is not None:
                hit = self._sweep_cache.get(key)
                if hit is not None:
                    self.sweep_cache_hits += 1
                    outputs[position] = replace(
                        hit,
                        policy=point.policy,
                        graph_label=labels[id(graph)],
                        cached=True,
                    )
                    continue
                in_flight = pending_by_key.get(key)
                if in_flight is not None:
                    self.sweep_cache_hits += 1
                    duplicates.append((position, in_flight))
                    continue
                stored = self._store_lookup(graph, point)
                if stored is not None:
                    # Persistent-tier hit: promote into the in-memory cache
                    # so the rest of this work list (and later sweeps) hit
                    # without touching disk, then replay like a cache hit.
                    self.sweep_store_hits += 1
                    self._sweep_cache[key] = stored
                    outputs[position] = replace(
                        stored,
                        policy=point.policy,
                        graph_label=labels[id(graph)],
                        cached=True,
                    )
                    continue
                pending_by_key[key] = len(pending)
            self.sweep_cache_misses += 1
            pending.append((graph, point))
            pending_keys.append(key)
            pending_targets.append(position)
        fresh = (
            self._sweep_evaluate(pending, labels, workers, mode, recovery, pending_targets)
            if pending
            else []
        )
        for (graph, point), target, key, result in zip(
            pending, pending_targets, pending_keys, fresh
        ):
            outputs[target] = result
            # Failed (or aborted) points are never cached or persisted: the
            # next sweep re-simulates them instead of replaying a poisoned
            # entry.
            if key is not None and isinstance(result, SweepResult):
                self._sweep_cache[key] = result
                self._store_write(graph, point, result)
        for position, pending_position in duplicates:
            graph, point = work[position]
            source = fresh[pending_position]
            if isinstance(source, SweepResult):
                outputs[position] = replace(
                    source,
                    policy=point.policy,
                    graph_label=labels[id(graph)],
                    cached=True,
                )
            elif isinstance(source, _PointFailure):
                # The one evaluation this duplicate coalesced onto failed;
                # the duplicate shares its fate (with its own spelling).
                outputs[position] = _PointFailure(
                    replace(source.failure, point=point, graph_label=labels[id(graph)]),
                    source.exception,
                )
        return self._finalize_outputs(outputs, recovery)

    def _finalize_outputs(
        self, outputs: List[object], recovery: _RecoveryPolicy
    ) -> List[Union[SweepResult, SweepFailure]]:
        """Apply the ``on_error`` policy to the assembled point outcomes."""
        finalized: List[Union[SweepResult, SweepFailure]] = []
        for outcome in outputs:
            if isinstance(outcome, _PointFailure):
                if recovery.on_error == "raise":
                    self._raise_point_failure(outcome)
                if recovery.on_error == "collect":
                    finalized.append(outcome.failure)
                # "skip": drop the point entirely.
            elif outcome is not None:
                finalized.append(outcome)
            # None outcomes only exist when a raise-mode abort cut the
            # sweep short — a _PointFailure is guaranteed to be present
            # and raise before this list is returned.
        return finalized

    @staticmethod
    def _raise_point_failure(outcome: _PointFailure) -> None:
        failure = outcome.failure
        exception = outcome.exception
        if exception is not None:
            if failure.traceback and exception.__traceback__ is None:
                # The exception crossed a process boundary (pickling drops
                # the traceback); keep the worker's formatted traceback
                # visible on the re-raised exception.
                note = "--- worker traceback ---\n" + failure.traceback.rstrip()
                add_note = getattr(exception, "add_note", None)
                if add_note is not None:
                    add_note(note)
            raise exception
        raise SweepPointError(
            f"sweep point {failure.label()} failed after {failure.attempts} "
            f"attempt(s): {failure.error_type}: {failure.error}",
            point_label=failure.label(),
            attempts=failure.attempts,
            error_type=failure.error_type,
            traceback_text=failure.traceback,
        )

    def _sweep_evaluate(
        self,
        work: Sequence[Tuple[PipelineGraph, SweepPoint]],
        labels: Dict[int, str],
        workers: Optional[int],
        mode: Optional[str],
        recovery: _RecoveryPolicy,
        positions: Sequence[int],
    ) -> List[object]:
        """Simulate every point of ``work`` under the selected mode.

        ``positions`` maps each work item back to its position in the
        caller's original work list — fault plans and backoff jitter key on
        original positions, so cache hits absorbing neighbouring points
        never shift which points a chaos plan targets.  Returns, per point,
        a :class:`SweepResult`, an internal ``_PointFailure`` (attempts
        exhausted) or ``None`` (not evaluated because a raise-mode abort
        cut the sweep short).
        """
        if workers == 0 or mode == "serial" or (len(work) <= 1 and mode is None):
            # A single point defaults to the serial path (no pool is worth
            # spinning up for it), but an *explicit* mode is honoured even
            # then — service fronts evaluate one point per call and still
            # want process-pool isolation semantics when asked for them.
            return self._sweep_serial(work, labels, recovery, positions)
        if mode == "thread":
            return self._sweep_threaded(work, labels, workers, recovery, positions)
        if mode == "process":
            culprits = self._pickle_culprits(work)
            if culprits:
                raise SimulationError(
                    "Session.sweep(mode='process') needs picklable graphs, but "
                    + "; ".join(culprits)
                    + ". Use mode='thread' for closure-carrying graphs."
                )
            return self._sweep_processes(work, labels, workers, recovery, positions)
        # Automatic mode: processes when possible, else warn + serial.
        culprits = self._pickle_culprits(work, warn=True)
        if culprits:
            return self._sweep_serial(work, labels, recovery, positions)
        return self._sweep_processes(work, labels, workers, recovery, positions)

    # ------------------------------------------------------------------
    def _normalize_work(
        self,
        graph_or_work,
        policies,
        arches,
        schemes,
    ) -> List[Tuple[PipelineGraph, SweepPoint]]:
        if isinstance(graph_or_work, PipelineGraph):
            graph = graph_or_work
            arches = tuple(arches) if arches is not None else (self.arch,)
            work: List[Tuple[PipelineGraph, SweepPoint]] = []
            for arch in arches:
                for scheme in schemes:
                    if scheme == "cusync":
                        for policy in policies:
                            work.append(
                                (graph, SweepPoint(scheme=scheme, policy=policy, arch=arch))
                            )
                    else:
                        work.append((graph, SweepPoint(scheme=scheme, policy=None, arch=arch)))
            return work
        work = []
        for item in graph_or_work:
            graph, point = item
            if not isinstance(graph, PipelineGraph) or not isinstance(point, SweepPoint):
                raise SimulationError(
                    "Session.sweep work items must be (PipelineGraph, SweepPoint) "
                    f"pairs, got {item!r}"
                )
            work.append((graph, point))
        return work

    @staticmethod
    def _graph_labels(work: Sequence[Tuple[PipelineGraph, SweepPoint]]) -> Dict[int, str]:
        """One stable, *unique* label per distinct graph.

        The graph's ``name`` when set (suffixed with ``#n`` if two distinct
        graphs share a name), otherwise its position in the work list —
        results of a multi-graph sweep stay attributable either way.
        """
        labels: Dict[int, str] = {}
        taken: set = set()
        ordinal = 0
        for graph, _ in work:
            if id(graph) in labels:
                continue
            label = graph.name if graph.name else f"graph{ordinal}"
            if label in taken:
                suffix = 2
                while f"{label}#{suffix}" in taken:
                    suffix += 1
                label = f"{label}#{suffix}"
            labels[id(graph)] = label
            taken.add(label)
            ordinal += 1
        return labels

    def _pickle_culprits(
        self, work: Sequence[Tuple[PipelineGraph, SweepPoint]], warn: bool = False
    ) -> List[str]:
        culprits: List[str] = []
        seen: set = set()
        for graph, _ in work:
            if id(graph) in seen:
                continue
            seen.add(id(graph))
            culprit = _closure_culprit(graph)
            if culprit is not None:
                culprits.append(culprit)
                if warn:
                    _warn_serial_fallback(graph, culprit)
        return culprits

    def _evaluate_with_recovery(
        self,
        graph: PipelineGraph,
        point: SweepPoint,
        graph_label: str,
        recovery: _RecoveryPolicy,
        position: int,
        cost_model: Optional[CostModel] = None,
        stage_summaries: Optional[Dict[str, StageSummary]] = None,
        lock: Optional[threading.Lock] = None,
    ) -> object:
        """Evaluate one point in-process, honouring retries/backoff/timeout.

        The timeout is cooperative here (a thread cannot be killed): an
        attempt that overruns is discarded after the fact and the point is
        retried — or failed — exactly as if the attempt had raised.  With
        ``lock`` set, the lock is held only around the evaluation itself,
        never across backoff sleeps, so other points sharing the graph
        keep making progress while this one waits to retry.
        """
        if cost_model is None:
            cost_model = self.cost_model(point.arch)
        if stage_summaries is None and point.scheme == "cusync":
            stage_summaries = self.stage_summaries(graph, point.arch)
        started = time.monotonic()
        last_exception: Optional[BaseException] = None
        last_traceback = ""
        for attempt in range(recovery.max_attempts):
            if attempt:
                time.sleep(_backoff_delay(recovery.backoff, position, attempt))

            def evaluate_once() -> SweepResult:
                return _sweep_point_result(
                    graph,
                    point,
                    cost_model=cost_model,
                    stage_summaries=stage_summaries,
                    graph_label=graph_label,
                )

            try:
                if lock is not None:
                    with lock:
                        attempt_start = time.monotonic()
                        raw = run_point_with_faults(
                            recovery.fault_plan, position, attempt, evaluate_once
                        )
                        attempt_elapsed = time.monotonic() - attempt_start
                else:
                    attempt_start = time.monotonic()
                    raw = run_point_with_faults(
                        recovery.fault_plan, position, attempt, evaluate_once
                    )
                    attempt_elapsed = time.monotonic() - attempt_start
                result = _validate_sweep_result(raw)
            except Exception as exc:
                last_exception = exc
                last_traceback = traceback_module.format_exc()
                continue
            if recovery.timeout is not None and attempt_elapsed > recovery.timeout:
                last_exception = TimeoutError(
                    f"sweep point attempt took {attempt_elapsed:.3f}s "
                    f"(timeout={recovery.timeout}s); result discarded"
                )
                last_traceback = ""
                continue
            return result
        failure = SweepFailure(
            point=point,
            graph_label=graph_label,
            attempts=recovery.max_attempts,
            error_type=type(last_exception).__name__,
            error=repr(last_exception),
            traceback=last_traceback,
            elapsed_s=time.monotonic() - started,
        )
        return _PointFailure(failure, last_exception)

    def _sweep_serial(
        self,
        work: Sequence[Tuple[PipelineGraph, SweepPoint]],
        labels: Dict[int, str],
        recovery: _RecoveryPolicy,
        positions: Sequence[int],
    ) -> List[object]:
        outputs: List[object] = []
        for (graph, point), position in zip(work, positions):
            outcome = self._evaluate_with_recovery(
                graph, point, labels[id(graph)], recovery, position
            )
            outputs.append(outcome)
            if isinstance(outcome, _PointFailure) and recovery.on_error == "raise":
                # Fail fast: the caller re-raises this failure, so the
                # remaining points would be wasted work.
                outputs.extend([None] * (len(work) - len(outputs)))
                break
        return outputs

    def _sweep_threaded(
        self,
        work: Sequence[Tuple[PipelineGraph, SweepPoint]],
        labels: Dict[int, str],
        workers: Optional[int],
        recovery: _RecoveryPolicy,
        positions: Sequence[int],
    ) -> List[object]:
        # Resolve each point's cost model and stage summaries serially up
        # front so worker threads only read prepared values (no per-point
        # registry/key work on the fan-out path); a per-graph lock
        # serializes points that share a graph (executors re-bind the
        # graph's kernels for every run, and two concurrent bindings of
        # one graph would race).
        locks: Dict[int, threading.Lock] = {}
        prepared = []
        for (graph, point), position in zip(work, positions):
            cost_model = self.cost_model(point.arch)
            stage_summaries = (
                self.stage_summaries(graph, point.arch) if point.scheme == "cusync" else None
            )
            locks.setdefault(id(graph), threading.Lock())
            prepared.append((graph, point, cost_model, stage_summaries, position))

        def evaluate(item) -> object:
            graph, point, cost_model, stage_summaries, position = item
            return self._evaluate_with_recovery(
                graph,
                point,
                labels[id(graph)],
                recovery,
                position,
                cost_model=cost_model,
                stage_summaries=stage_summaries,
                lock=locks[id(graph)],
            )

        max_workers = workers if workers else min(8, len(work))
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(evaluate, prepared))

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Kill a pool's worker processes and discard the pool.

        ``shutdown`` alone would join workers — a worker wedged on a hung
        point would block forever — so the workers are killed first; the
        join is then immediate (the pool's management thread notices the
        dead workers and winds itself down), which lets the executor
        release its pipes in an orderly way instead of tripping over them
        at interpreter exit.
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            # A pool broken mid-shutdown can raise from its own cleanup;
            # the workers are already dead, which is all that matters.
            pass

    def _sweep_processes(
        self,
        work: Sequence[Tuple[PipelineGraph, SweepPoint]],
        labels: Dict[int, str],
        workers: Optional[int],
        recovery: _RecoveryPolicy,
        positions: Sequence[int],
    ) -> List[object]:
        n = len(work)
        base = [
            (graph, point, self.cost_model(point.arch), labels[id(graph)], position)
            for (graph, point), position in zip(work, positions)
        ]
        max_workers = workers if workers else min(8, n)

        pool = ProcessPoolExecutor(max_workers=max_workers)
        try:
            # Probe that worker processes actually start (some sandboxes
            # forbid them); after a successful probe, genuine worker
            # crashes are handled by the recovery loop instead of silently
            # re-running serially.
            pool.submit(int, 0).result()
        except (OSError, RuntimeError):
            self._terminate_pool(pool)
            return self._sweep_serial(work, labels, recovery, positions)

        outputs: List[object] = [None] * n
        attempts = [0] * n  # attempts already charged per point
        not_before = [0.0] * n  # backoff deadline before the next submit
        started_at: List[Optional[float]] = [None] * n
        pending = deque(range(n))  # indices waiting to be (re)submitted
        in_flight: Dict[object, Tuple[int, float]] = {}  # future -> (index, t0)
        completed = 0
        abort = False

        def charge_attempt(
            index: int,
            exc: Optional[BaseException],
            error_type: str,
            error_repr: str,
            tb_text: str,
        ) -> None:
            """One attempt of ``index`` failed: retry after backoff, or fail."""
            nonlocal completed, abort
            attempts[index] += 1
            if attempts[index] >= recovery.max_attempts:
                graph, point, _, graph_label, position = base[index]
                first_start = started_at[index]
                failure = SweepFailure(
                    point=point,
                    graph_label=graph_label,
                    attempts=attempts[index],
                    error_type=error_type,
                    error=error_repr,
                    traceback=tb_text,
                    elapsed_s=(
                        time.monotonic() - first_start if first_start is not None else 0.0
                    ),
                )
                outputs[index] = _PointFailure(failure, exc)
                completed += 1
                if recovery.on_error == "raise":
                    abort = True
            else:
                position = base[index][4]
                not_before[index] = time.monotonic() + _backoff_delay(
                    recovery.backoff, position, attempts[index]
                )
                pending.append(index)

        def submit(index: int) -> None:
            graph, point, cost_model, graph_label, position = base[index]
            if started_at[index] is None:
                started_at[index] = time.monotonic()
            payload = (
                graph,
                point,
                cost_model,
                graph_label,
                recovery.fault_plan,
                position,
                attempts[index],
            )
            in_flight[pool.submit(_sweep_worker, payload)] = (index, time.monotonic())

        def recycle_pool() -> None:
            nonlocal pool
            self._terminate_pool(pool)
            pool = ProcessPoolExecutor(max_workers=max_workers)

        try:
            while completed < n and not abort:
                now = time.monotonic()
                # Submit every ready task (backoff deadline passed) up to
                # the pool's width; deferred tasks keep their order.
                if pending and len(in_flight) < max_workers:
                    deferred: List[int] = []
                    while pending and len(in_flight) < max_workers:
                        index = pending.popleft()
                        if not_before[index] > now:
                            deferred.append(index)
                        else:
                            submit(index)
                    pending.extendleft(reversed(deferred))
                if not in_flight:
                    # Everything runnable is waiting out a backoff.
                    soonest = min(not_before[index] for index in pending)
                    time.sleep(max(0.0, soonest - time.monotonic()))
                    continue
                if recovery.timeout is not None:
                    deadline = min(t0 + recovery.timeout for _, t0 in in_flight.values())
                    wait_timeout = max(0.0, deadline - time.monotonic()) + 0.01
                else:
                    wait_timeout = None
                done, _ = futures_wait(
                    list(in_flight), timeout=wait_timeout, return_when=FIRST_COMPLETED
                )
                broken: Optional[BaseException] = None
                for future in done:
                    index, t0 = in_flight.pop(future)
                    try:
                        value = future.result()
                    except BrokenProcessPool as exc:
                        # Put the future back so the stranded sweep below
                        # charges this point along with the rest.
                        in_flight[future] = (index, t0)
                        broken = exc
                        break
                    except Exception as exc:
                        # e.g. the worker's return value failed to unpickle.
                        charge_attempt(
                            index,
                            exc,
                            type(exc).__name__,
                            repr(exc),
                            traceback_module.format_exc(),
                        )
                        continue
                    if isinstance(value, _WorkerFailure):
                        charge_attempt(
                            index,
                            value.exception,
                            value.error_type,
                            value.error_repr,
                            value.traceback_text,
                        )
                        continue
                    try:
                        result = _validate_sweep_result(value)
                    except SimulationError as exc:
                        charge_attempt(index, exc, type(exc).__name__, repr(exc), "")
                        continue
                    outputs[index] = result
                    completed += 1
                if broken is not None:
                    # A worker died hard (injected crash / OOM kill / segv).
                    # Any in-flight point may have been the one the dead
                    # worker was evaluating, so each is charged one attempt
                    # and requeued; the broken pool is respawned.
                    stranded = [index for index, _ in in_flight.values()]
                    in_flight.clear()
                    recycle_pool()
                    for index in stranded:
                        charge_attempt(
                            index,
                            broken,
                            type(broken).__name__,
                            f"worker process died while this point was in flight: {broken!r}",
                            "",
                        )
                    continue
                if recovery.timeout is not None and not done:
                    now = time.monotonic()
                    overdue = [
                        (index, t0)
                        for _, (index, t0) in in_flight.items()
                        if now - t0 >= recovery.timeout
                    ]
                    if overdue:
                        # Running futures cannot be cancelled: kill the
                        # workers and respawn the pool.  Overdue points are
                        # charged a timeout attempt; the other in-flight
                        # points are requeued without charge.
                        overdue_set = {index for index, _ in overdue}
                        bystanders = [
                            index
                            for _, (index, _) in in_flight.items()
                            if index not in overdue_set
                        ]
                        in_flight.clear()
                        recycle_pool()
                        for index, _ in overdue:
                            exc = TimeoutError(
                                f"sweep point exceeded timeout={recovery.timeout}s "
                                "in a worker process; worker killed"
                            )
                            charge_attempt(index, exc, "TimeoutError", repr(exc), "")
                        for index in reversed(bystanders):
                            not_before[index] = 0.0
                            pending.appendleft(index)
        finally:
            self._terminate_pool(pool)
        return outputs
