"""The declarative pipeline API: one immutable graph, pluggable backends.

This package is the user-facing entry point for describing and executing a
DAG of dependent kernels (the paper's core abstraction) without rebuilding
kernels per run:

* :class:`PipelineGraph` / :class:`StageSpec` / :class:`Edge` — the
  immutable, validated graph description (:mod:`repro.pipeline.graph`);
* :class:`Executor` + the ``streamsync`` / ``streamk`` / ``cusync``
  backends (:mod:`repro.pipeline.executors`);
* :func:`run` and :class:`Session` (with :meth:`Session.sweep`) — one-shot
  and cached repeated execution (:mod:`repro.pipeline.session`).

Quick start::

    from repro.pipeline import PipelineGraph, StageSpec, Edge, Session

    graph = PipelineGraph(
        stages=[StageSpec("gemm1", producer), StageSpec("gemm2", consumer)],
        edges=[Edge("gemm1", "gemm2", tensor="XW1")],
    )
    session = Session()
    baseline = session.run(graph, scheme="streamsync")
    synced = session.run(graph, scheme="cusync", policy="TileSync")
"""

from repro.cusync.policies import (
    PolicyAssignment,
    PolicyContext,
    PolicySpec,
    register_policy,
    registered_policies,
)
from repro.gpu.arch import (
    ArchLike,
    ArchSpec,
    register_arch,
    registered_archs,
    resolve_arch,
)
from repro.pipeline.graph import Edge, PipelineGraph, StageSpec, linear_graph
from repro.pipeline.executors import (
    CuSyncBackend,
    ExecutionContext,
    Executor,
    PolicyLike,
    StageSummary,
    StreamKBackend,
    StreamSyncBackend,
    auto_flags,
    available_schemes,
    get_executor,
    policy_context,
    register_executor,
    resolve_order,
    resolve_policy,
    summarize_stages,
)
from repro.pipeline.session import (
    Session,
    SweepFailure,
    SweepPoint,
    SweepResult,
    run,
    sweep_archs,
    sweep_policies,
)

__all__ = [
    "PipelineGraph",
    "StageSpec",
    "Edge",
    "linear_graph",
    "Executor",
    "ExecutionContext",
    "StreamSyncBackend",
    "StreamKBackend",
    "CuSyncBackend",
    "PolicyLike",
    "PolicySpec",
    "PolicyAssignment",
    "PolicyContext",
    "register_policy",
    "registered_policies",
    "policy_context",
    "StageSummary",
    "auto_flags",
    "available_schemes",
    "get_executor",
    "register_executor",
    "resolve_policy",
    "resolve_order",
    "summarize_stages",
    "ArchLike",
    "ArchSpec",
    "register_arch",
    "registered_archs",
    "resolve_arch",
    "Session",
    "SweepFailure",
    "SweepPoint",
    "SweepResult",
    "run",
    "sweep_archs",
    "sweep_policies",
]
