"""Request-level serving on the simulator: open-loop load, continuous
batching, latency-percentile reporting.

Every other experiment in this repository runs a pipeline once; serving
is where the paper's thesis — tile-level synchronization recovering the
latency lost to stream-level barriers — compounds, because queueing
amplifies per-iteration latency differences into tail-latency blowups.
The pieces (see ``docs/serving.md`` for the full tour):

:mod:`repro.serving.arrivals`
    Open-loop traffic: :class:`InferenceRequest` plus deterministic
    seeded arrival processes — :class:`PoissonArrivals`,
    :class:`FixedRateArrivals` and replayed :class:`TraceArrivals`.

:mod:`repro.serving.batcher`
    :class:`ContinuousBatcher` — iteration-level (Orca-style) batching:
    prefill-prioritized FIFO admission under max-batch / KV-budget /
    prefill-token caps, immediate eviction of finished sequences.  Under
    overload it grows admission control: bounded queues with shedding
    policies (``"reject-on-full"``, ``"shed-expired"``, ``"priority"``)
    emitting structured :class:`ShedRecord` outcomes, and priority
    preemption with KV eviction (:class:`PreemptionRecord`, anti-thrash
    guarded) instead of silent infinite queueing.

:mod:`repro.serving.simulator`
    :class:`ServingSimulator` + :class:`ServingScenario` — the
    virtual-time loop charging each iteration the simulated GPU time of
    its batch-shaped transformer layer, evaluated through
    :meth:`Session.sweep_point <repro.pipeline.Session.sweep_point>` so
    repeated batch shapes replay from the sweep cache / result store.
    :func:`compare_schemes` runs one scenario under several schemes.

:mod:`repro.serving.metrics`
    :class:`LatencyReport` — exact p50/p90/p99 percentiles
    (:func:`exact_percentile`, pinned against numpy), time-to-first-token,
    throughput and SLO-goodput, plus the cache-hit counters that make
    caching part of the serving story.

The whole loop is bit-deterministic for a given scenario: same seed ⇒
same arrivals ⇒ same batch compositions ⇒ same latencies ⇒ ``==``
reports.
"""

from repro.serving.arrivals import (
    ArrivalProcess,
    FixedRateArrivals,
    InferenceRequest,
    PoissonArrivals,
    TraceArrivals,
)
from repro.serving.batcher import (
    BatchPlan,
    ContinuousBatcher,
    PreemptionRecord,
    SHED_POLICIES,
    ShedRecord,
)
from repro.serving.metrics import (
    LatencyReport,
    PriorityClassStats,
    RequestRecord,
    exact_percentile,
)
from repro.serving.simulator import ServingScenario, ServingSimulator, compare_schemes

__all__ = [
    "ArrivalProcess",
    "BatchPlan",
    "ContinuousBatcher",
    "FixedRateArrivals",
    "InferenceRequest",
    "LatencyReport",
    "PoissonArrivals",
    "PreemptionRecord",
    "PriorityClassStats",
    "RequestRecord",
    "SHED_POLICIES",
    "ServingScenario",
    "ServingSimulator",
    "ShedRecord",
    "TraceArrivals",
    "compare_schemes",
    "exact_percentile",
]
