"""Latency metrics: exact percentiles, goodput, time-to-first-token.

Percentiles are computed by **exact rank** over the full latency
population — every request of a serving simulation is recorded, nothing
is sampled or bucketed — using the same linear-interpolation definition
as ``numpy.percentile``'s default method: for ``n`` sorted values, the
``q``-th percentile sits at fractional rank ``(n - 1) * q / 100`` and
interpolates linearly between the two neighbouring order statistics.
The property suite pins this against the numpy reference.

A :class:`LatencyReport` is a frozen value object: two bit-identical
serving runs produce ``==`` reports (the determinism contract's
assertable form), and :meth:`LatencyReport.to_dict` lowers one to plain
JSON types for benchmark records.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Sequence, Tuple

from repro.errors import ServingError
from repro.serving.batcher import ShedRecord

__all__ = [
    "exact_percentile",
    "RequestRecord",
    "LatencyReport",
    "PriorityClassStats",
]


def _sanitize(value: object) -> object:
    """JSON has no Infinity; lower non-finite floats to None."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def exact_percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` by exact rank.

    Matches ``numpy.percentile(values, q)`` (the default linear
    interpolation): sort the population, place ``q`` at fractional rank
    ``(len - 1) * q / 100``, interpolate between the bracketing order
    statistics.  Exact at integer ranks — ``q=0`` is the minimum,
    ``q=100`` the maximum, and a 101-value population needs no
    interpolation at all.
    """
    if not values:
        raise ServingError("exact_percentile needs a non-empty population")
    if not 0.0 <= q <= 100.0:
        raise ServingError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = (len(ordered) - 1) * (q / 100.0)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    return float(ordered[low] + (ordered[high] - ordered[low]) * fraction)


@dataclass(frozen=True)
class RequestRecord:
    """Per-request latency decomposition of one served request.

    All times are simulated microseconds.  ``queue_us`` spans arrival to
    prefill start, ``prefill_us`` the prefill iteration itself (whose end
    is the first-token event, so ``ttft_us = queue_us + prefill_us``),
    ``decode_us`` the remaining decode iterations, and ``total_us`` the
    whole arrival-to-completion span.
    """

    request_id: int
    arrival_us: float
    prompt_tokens: int
    decode_tokens: int
    queue_us: float
    prefill_us: float
    decode_us: float
    total_us: float
    ttft_us: float
    finish_us: float
    #: QoS attributes and restart accounting (legacy defaults for
    #: scenarios that never shed or preempt).
    priority: int = 0
    deadline_us: float = math.inf
    preemptions: int = 0

    @property
    def met_deadline(self) -> bool:
        """True when the request completed by its (possibly infinite) deadline."""
        return self.finish_us <= self.deadline_us


@dataclass(frozen=True)
class PriorityClassStats:
    """Aggregate outcome of one priority class under (over)load.

    The per-class view is what makes a priority policy auditable: under
    2x overload the high class should keep its percentiles while the low
    class absorbs the shedding.  ``p50/p99`` are 0.0 for a class with no
    completions (everything shed).
    """

    priority: int
    completed: int
    shed: int
    deadline_hits: int
    p50_total_us: float
    p99_total_us: float
    p99_ttft_us: float


@dataclass(frozen=True)
class LatencyReport:
    """Aggregate latency/goodput metrics of one serving simulation.

    Percentiles are exact (see :func:`exact_percentile`) over the full
    request population, which rides along in ``records`` so reports are
    self-contained and comparable with ``==``.  ``goodput_rps`` counts
    only requests whose total latency met ``slo_us``; with the default
    infinite SLO it equals ``throughput_rps``.  The ``sweep_cache_*`` /
    ``store_hits`` fields surface how much of the serving load the
    :class:`~repro.pipeline.Session` caches absorbed — part of the
    serving story, not a diagnostic afterthought.
    """

    scheme: str
    policy: str
    arch: str
    requests: int
    completed: int
    simulated_us: float
    iterations: int
    prefill_iterations: int
    decode_iterations: int
    distinct_shapes: int
    sweep_cache_hits: int
    sweep_cache_misses: int
    store_hits: int
    slo_us: float
    p50_total_us: float
    p90_total_us: float
    p99_total_us: float
    mean_total_us: float
    p50_ttft_us: float
    p99_ttft_us: float
    throughput_rps: float
    goodput_rps: float
    tokens_per_s: float
    records: Tuple[RequestRecord, ...]
    #: Overload-resilience counters (all legacy-zero for scenarios that
    #: never shed or preempt — reports from old and new runs compare
    #: equal field-for-field).
    shed: int = 0
    preemptions: int = 0
    restarted_tokens: int = 0
    kv_reserved_peak: int = 0
    deadline_hits: int = 0
    priority_classes: Tuple[PriorityClassStats, ...] = ()
    shed_records: Tuple[ShedRecord, ...] = ()

    @classmethod
    def from_records(
        cls,
        records: Sequence[RequestRecord],
        *,
        scheme: str,
        policy: str,
        arch: str,
        requests: int,
        simulated_us: float,
        iterations: int,
        prefill_iterations: int,
        decode_iterations: int,
        distinct_shapes: int,
        sweep_cache_hits: int,
        sweep_cache_misses: int,
        store_hits: int,
        slo_us: float = math.inf,
        shed_records: Sequence[ShedRecord] = (),
        preemptions: int = 0,
        restarted_tokens: int = 0,
        kv_reserved_peak: int = 0,
    ) -> "LatencyReport":
        if not records and not shed_records:
            raise ServingError(
                "a LatencyReport needs at least one completed or shed request"
            )
        if simulated_us < 0.0 or (records and simulated_us <= 0.0):
            raise ServingError(f"simulated_us must be positive, got {simulated_us}")
        totals = [record.total_us for record in records]
        ttfts = [record.ttft_us for record in records]
        seconds = simulated_us / 1e6
        within_slo = sum(1 for total in totals if total <= slo_us)
        tokens = sum(record.prompt_tokens + record.decode_tokens for record in records)
        deadline_hits = sum(1 for record in records if record.met_deadline)
        return cls(
            scheme=scheme,
            policy=policy,
            arch=arch,
            requests=requests,
            completed=len(records),
            simulated_us=simulated_us,
            iterations=iterations,
            prefill_iterations=prefill_iterations,
            decode_iterations=decode_iterations,
            distinct_shapes=distinct_shapes,
            sweep_cache_hits=sweep_cache_hits,
            sweep_cache_misses=sweep_cache_misses,
            store_hits=store_hits,
            slo_us=slo_us,
            p50_total_us=exact_percentile(totals, 50.0) if totals else 0.0,
            p90_total_us=exact_percentile(totals, 90.0) if totals else 0.0,
            p99_total_us=exact_percentile(totals, 99.0) if totals else 0.0,
            mean_total_us=sum(totals) / len(totals) if totals else 0.0,
            p50_ttft_us=exact_percentile(ttfts, 50.0) if ttfts else 0.0,
            p99_ttft_us=exact_percentile(ttfts, 99.0) if ttfts else 0.0,
            throughput_rps=len(records) / seconds if seconds > 0.0 else 0.0,
            goodput_rps=within_slo / seconds if seconds > 0.0 else 0.0,
            tokens_per_s=tokens / seconds if seconds > 0.0 else 0.0,
            records=tuple(records),
            shed=len(shed_records),
            preemptions=preemptions,
            restarted_tokens=restarted_tokens,
            kv_reserved_peak=kv_reserved_peak,
            deadline_hits=deadline_hits,
            priority_classes=cls._priority_classes(records, shed_records),
            shed_records=tuple(shed_records),
        )

    @staticmethod
    def _priority_classes(
        records: Sequence[RequestRecord], shed_records: Sequence[ShedRecord]
    ) -> Tuple[PriorityClassStats, ...]:
        priorities = sorted(
            {r.priority for r in records} | {s.priority for s in shed_records},
            reverse=True,
        )
        classes = []
        for priority in priorities:
            completed = [r for r in records if r.priority == priority]
            shed = sum(1 for s in shed_records if s.priority == priority)
            totals = [r.total_us for r in completed]
            ttfts = [r.ttft_us for r in completed]
            classes.append(
                PriorityClassStats(
                    priority=priority,
                    completed=len(completed),
                    shed=shed,
                    deadline_hits=sum(1 for r in completed if r.met_deadline),
                    p50_total_us=exact_percentile(totals, 50.0) if totals else 0.0,
                    p99_total_us=exact_percentile(totals, 99.0) if totals else 0.0,
                    p99_ttft_us=exact_percentile(ttfts, 99.0) if ttfts else 0.0,
                )
            )
        return tuple(classes)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """The aggregate metrics without the per-request population."""
        skip = {"records", "shed_records"}
        out: Dict[str, object] = {}
        for spec in fields(self):
            if spec.name in skip:
                continue
            value = getattr(self, spec.name)
            if spec.name == "priority_classes":
                value = [
                    {k: _sanitize(v) for k, v in asdict(stats).items()}
                    for stats in self.priority_classes
                ]
            out[spec.name] = _sanitize(value)
        return out

    def to_dict(self) -> Dict[str, object]:
        """The full report as plain JSON types (records included)."""
        out = self.summary()
        out["records"] = [
            {k: _sanitize(v) for k, v in asdict(record).items()}
            for record in self.records
        ]
        out["shed_records"] = [asdict(record) for record in self.shed_records]
        return out

    def describe(self) -> str:
        line = (
            f"{self.scheme}@{self.arch}: p50 {self.p50_total_us:.0f}us, "
            f"p99 {self.p99_total_us:.0f}us, ttft p50 {self.p50_ttft_us:.0f}us, "
            f"goodput {self.goodput_rps:.1f} req/s "
            f"({self.completed}/{self.requests} in {self.simulated_us / 1e6:.3f}s)"
        )
        if self.shed or self.preemptions:
            line += f" [shed {self.shed}, preempted {self.preemptions}]"
        return line
