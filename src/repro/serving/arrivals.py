"""Open-loop traffic: deterministic arrival processes emitting requests.

An *open-loop* generator emits requests on its own schedule, regardless
of whether the system has kept up — exactly the regime where queueing
amplifies per-iteration latency differences into p99 blowups (a
closed-loop client would politely slow down and hide them).

Every process here is a frozen dataclass of primitives, which buys the
two properties the serving determinism contract needs:

* **Seeded determinism** — :meth:`ArrivalProcess.generate` is a pure
  function of the process's fields: the same seed produces the identical
  arrival sequence, and ``generate(n)`` is a prefix of ``generate(m)``
  for ``n <= m`` (each call re-seeds a private RNG, so earlier calls
  never perturb later ones).
* **Pickle safety** — a process survives a pickle round-trip with its
  sequence intact, so scenarios can cross process boundaries (worker
  pools, the disk store's key canonicalization) without drift.

Randomness uses :class:`random.Random` (Mersenne Twister), whose output
for a given seed is specified and stable across platforms and Python
versions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from random import Random
from typing import Tuple, Union

from repro.errors import ServingError

__all__ = [
    "InferenceRequest",
    "ArrivalProcess",
    "FixedRateArrivals",
    "PoissonArrivals",
    "TraceArrivals",
    "TokenSpec",
]

#: A token count: fixed (``128``) or an inclusive ``(low, high)`` range
#: sampled per request by the seeded processes.
TokenSpec = Union[int, Tuple[int, int]]


@dataclass(frozen=True)
class InferenceRequest:
    """One inference request of an open-loop workload.

    ``decode_tokens`` counts *output* tokens including the first one
    (which the prefill iteration itself produces), so ``decode_tokens=1``
    is a prompt-only request that completes at the end of its prefill.
    """

    request_id: int
    arrival_us: float
    prompt_tokens: int
    decode_tokens: int

    def __post_init__(self) -> None:
        if self.arrival_us < 0.0:
            raise ServingError(
                f"request {self.request_id}: arrival_us must be non-negative, "
                f"got {self.arrival_us}"
            )
        if self.prompt_tokens <= 0:
            raise ServingError(
                f"request {self.request_id}: prompt_tokens must be positive, "
                f"got {self.prompt_tokens}"
            )
        if self.decode_tokens <= 0:
            raise ServingError(
                f"request {self.request_id}: decode_tokens must be positive, "
                f"got {self.decode_tokens}"
            )

    @property
    def total_tokens(self) -> int:
        """Final KV-cache footprint: prompt plus every generated token."""
        return self.prompt_tokens + self.decode_tokens


def _check_token_spec(name: str, spec: TokenSpec) -> None:
    if isinstance(spec, int):
        if spec <= 0:
            raise ServingError(f"{name} must be positive, got {spec}")
        return
    low, high = spec
    if low <= 0 or high < low:
        raise ServingError(
            f"{name} range must satisfy 0 < low <= high, got ({low}, {high})"
        )


def _sample_tokens(rng: Random, spec: TokenSpec) -> int:
    if isinstance(spec, int):
        return spec
    return rng.randint(spec[0], spec[1])


class ArrivalProcess(ABC):
    """A deterministic source of :class:`InferenceRequest` sequences."""

    @abstractmethod
    def generate(self, count: int) -> Tuple[InferenceRequest, ...]:
        """The first ``count`` requests of the process's arrival sequence.

        Deterministic in the process's fields, and prefix-stable:
        ``generate(n) == generate(m)[:n]`` for ``n <= m``.
        """

    def _check_count(self, count: int) -> None:
        if count <= 0:
            raise ServingError(f"request count must be positive, got {count}")


@dataclass(frozen=True)
class FixedRateArrivals(ArrivalProcess):
    """One request every ``interval_us`` of simulated time, fixed lengths."""

    interval_us: float
    prompt_tokens: int = 128
    decode_tokens: int = 16
    start_us: float = 0.0

    def __post_init__(self) -> None:
        if self.interval_us <= 0.0:
            raise ServingError(f"interval_us must be positive, got {self.interval_us}")
        if self.start_us < 0.0:
            raise ServingError(f"start_us must be non-negative, got {self.start_us}")
        _check_token_spec("prompt_tokens", self.prompt_tokens)
        _check_token_spec("decode_tokens", self.decode_tokens)

    def generate(self, count: int) -> Tuple[InferenceRequest, ...]:
        self._check_count(count)
        return tuple(
            InferenceRequest(
                request_id=index,
                arrival_us=self.start_us + index * self.interval_us,
                prompt_tokens=self.prompt_tokens,
                decode_tokens=self.decode_tokens,
            )
            for index in range(count)
        )


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Seeded Poisson arrivals: exponential gaps at ``rate_rps`` requests/s.

    Prompt and decode lengths may be fixed ints or inclusive ``(low,
    high)`` ranges sampled (uniformly) from the same seeded RNG as the
    gaps, so one seed pins the entire workload — arrival times *and*
    length mix.
    """

    rate_rps: float
    prompt_tokens: TokenSpec = 128
    decode_tokens: TokenSpec = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0.0:
            raise ServingError(f"rate_rps must be positive, got {self.rate_rps}")
        _check_token_spec("prompt_tokens", self.prompt_tokens)
        _check_token_spec("decode_tokens", self.decode_tokens)

    def generate(self, count: int) -> Tuple[InferenceRequest, ...]:
        self._check_count(count)
        rng = Random(self.seed)
        rate_per_us = self.rate_rps / 1e6
        clock = 0.0
        requests = []
        for index in range(count):
            clock += rng.expovariate(rate_per_us)
            requests.append(
                InferenceRequest(
                    request_id=index,
                    arrival_us=clock,
                    prompt_tokens=_sample_tokens(rng, self.prompt_tokens),
                    decode_tokens=_sample_tokens(rng, self.decode_tokens),
                )
            )
        return tuple(requests)


@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replayed arrivals from an explicit trace.

    Entries are ``(arrival_us, prompt_tokens, decode_tokens)`` tuples or
    :class:`InferenceRequest` objects (e.g. the output of another
    process's :meth:`~ArrivalProcess.generate`) — both normalize to
    tuples, so two traces describing the same arrivals compare equal.
    """

    trace: Tuple[Tuple[float, int, int], ...]

    def __post_init__(self) -> None:
        if not self.trace:
            raise ServingError("TraceArrivals needs a non-empty trace")
        normalized = tuple(
            (entry.arrival_us, entry.prompt_tokens, entry.decode_tokens)
            if isinstance(entry, InferenceRequest)
            else tuple(entry)
            for entry in self.trace
        )
        object.__setattr__(self, "trace", normalized)
        previous = 0.0
        for position, entry in enumerate(normalized):
            arrival_us, _prompt, _decode = entry
            if arrival_us < previous:
                raise ServingError(
                    f"trace entry {position} arrives at {arrival_us} before its "
                    f"predecessor at {previous}; traces must be sorted by arrival"
                )
            previous = arrival_us

    def generate(self, count: int) -> Tuple[InferenceRequest, ...]:
        self._check_count(count)
        if count > len(self.trace):
            raise ServingError(
                f"trace holds {len(self.trace)} requests but {count} were asked for"
            )
        return tuple(
            InferenceRequest(
                request_id=index,
                arrival_us=float(arrival_us),
                prompt_tokens=prompt,
                decode_tokens=decode,
            )
            for index, (arrival_us, prompt, decode) in enumerate(self.trace[:count])
        )
