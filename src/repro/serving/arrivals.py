"""Open-loop traffic: deterministic arrival processes emitting requests.

An *open-loop* generator emits requests on its own schedule, regardless
of whether the system has kept up — exactly the regime where queueing
amplifies per-iteration latency differences into p99 blowups (a
closed-loop client would politely slow down and hide them).

Every process here is a frozen dataclass of primitives, which buys the
two properties the serving determinism contract needs:

* **Seeded determinism** — :meth:`ArrivalProcess.generate` is a pure
  function of the process's fields: the same seed produces the identical
  arrival sequence, and ``generate(n)`` is a prefix of ``generate(m)``
  for ``n <= m`` (each call re-seeds a private RNG, so earlier calls
  never perturb later ones).
* **Pickle safety** — a process survives a pickle round-trip with its
  sequence intact, so scenarios can cross process boundaries (worker
  pools, the disk store's key canonicalization) without drift.

Randomness uses :class:`random.Random` (Mersenne Twister), whose output
for a given seed is specified and stable across platforms and Python
versions.  Quality-of-service attributes (deadlines, priorities) are
sampled from a *derived* RNG seeded with ``f"{seed}-qos"`` so that
turning them on never perturbs the arrival-time and length streams an
existing seed already pins.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from random import Random
from typing import Optional, Tuple, Union

from repro.errors import ServingError

__all__ = [
    "InferenceRequest",
    "ArrivalProcess",
    "FixedRateArrivals",
    "PoissonArrivals",
    "TraceArrivals",
    "TokenSpec",
    "SlackSpec",
    "PrioritySpec",
]

#: A token count: fixed (``128``) or an inclusive ``(low, high)`` range
#: sampled per request by the seeded processes.
TokenSpec = Union[int, Tuple[int, int]]

#: Deadline slack in microseconds past the arrival: ``None`` (no
#: deadline), a fixed float, or an inclusive ``(low, high)`` range
#: sampled per request from the derived QoS RNG.
SlackSpec = Optional[Union[float, Tuple[float, float]]]

#: A request priority: a fixed int (higher = more important) or a tuple
#: of candidate priorities sampled uniformly per request.
PrioritySpec = Union[int, Tuple[int, ...]]


def _is_real(value: object) -> bool:
    """True for int/float but not bool (which is an int subclass)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class InferenceRequest:
    """One inference request of an open-loop workload.

    ``decode_tokens`` counts *output* tokens including the first one
    (which the prefill iteration itself produces), so ``decode_tokens=1``
    is a prompt-only request that completes at the end of its prefill.

    ``deadline_us`` is an *absolute* simulated time by which the request
    must complete to be useful (``math.inf`` = no deadline); a batcher
    running a deadline-aware shedding policy drops requests that can no
    longer meet it.  ``priority`` orders requests under the ``"priority"``
    policy — higher values are more important and may preempt lower ones.
    """

    request_id: int
    arrival_us: float
    prompt_tokens: int
    decode_tokens: int
    deadline_us: float = math.inf
    priority: int = 0

    def __post_init__(self) -> None:
        # `not (x >= 0)` instead of `x < 0` so NaN arrivals are rejected
        # rather than silently defeating every downstream comparison.
        if not _is_real(self.arrival_us) or not self.arrival_us >= 0.0:
            raise ServingError(
                f"request {self.request_id}: arrival_us must be a non-negative "
                f"number, got {self.arrival_us!r}"
            )
        if math.isinf(self.arrival_us):
            raise ServingError(
                f"request {self.request_id}: arrival_us must be finite, "
                f"got {self.arrival_us}"
            )
        if not isinstance(self.prompt_tokens, int) or isinstance(
            self.prompt_tokens, bool
        ) or self.prompt_tokens <= 0:
            raise ServingError(
                f"request {self.request_id}: prompt_tokens must be a positive "
                f"int, got {self.prompt_tokens!r}"
            )
        if not isinstance(self.decode_tokens, int) or isinstance(
            self.decode_tokens, bool
        ) or self.decode_tokens <= 0:
            raise ServingError(
                f"request {self.request_id}: decode_tokens must be a positive "
                f"int, got {self.decode_tokens!r}"
            )
        if not _is_real(self.deadline_us) or not self.deadline_us > self.arrival_us:
            raise ServingError(
                f"request {self.request_id}: deadline_us must be a number past "
                f"arrival ({self.arrival_us}), got {self.deadline_us!r}"
            )
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise ServingError(
                f"request {self.request_id}: priority must be an int, "
                f"got {self.priority!r}"
            )

    @property
    def total_tokens(self) -> int:
        """Final KV-cache footprint: prompt plus every generated token."""
        return self.prompt_tokens + self.decode_tokens

    def expired(self, now_us: float) -> bool:
        """True once ``now_us`` has passed a finite deadline."""
        return now_us > self.deadline_us


def _check_token_spec(name: str, spec: TokenSpec) -> None:
    if isinstance(spec, int):
        if spec <= 0:
            raise ServingError(f"{name} must be positive, got {spec}")
        return
    low, high = spec
    if low <= 0 or high < low:
        raise ServingError(
            f"{name} range must satisfy 0 < low <= high, got ({low}, {high})"
        )


def _sample_tokens(rng: Random, spec: TokenSpec) -> int:
    if isinstance(spec, int):
        return spec
    return rng.randint(spec[0], spec[1])


def _check_slack_spec(name: str, spec: SlackSpec) -> None:
    if spec is None:
        return
    if _is_real(spec):
        if not spec > 0.0:
            raise ServingError(f"{name} must be positive, got {spec}")
        return
    low, high = spec
    if not (_is_real(low) and _is_real(high)) or low <= 0.0 or high < low:
        raise ServingError(
            f"{name} range must satisfy 0 < low <= high, got ({low}, {high})"
        )


def _check_priority_spec(name: str, spec: PrioritySpec) -> None:
    if isinstance(spec, int) and not isinstance(spec, bool):
        return
    if (
        isinstance(spec, tuple)
        and spec
        and all(isinstance(p, int) and not isinstance(p, bool) for p in spec)
    ):
        return
    raise ServingError(
        f"{name} must be an int or a non-empty tuple of ints, got {spec!r}"
    )


def _sample_qos(
    qos_rng: Random, arrival_us: float, slack: SlackSpec, priorities: PrioritySpec
) -> Tuple[float, int]:
    """Per-request (deadline_us, priority) draw from the derived QoS RNG.

    The draw order is fixed (slack first, then priority) and each draw
    happens exactly once per request, so adding requests never reshuffles
    earlier ones — the QoS stream is prefix-stable just like the arrival
    stream.
    """
    if slack is None:
        deadline_us = math.inf
    elif _is_real(slack):
        deadline_us = arrival_us + float(slack)
    else:
        deadline_us = arrival_us + qos_rng.uniform(float(slack[0]), float(slack[1]))
    if isinstance(priorities, tuple):
        priority = priorities[qos_rng.randrange(len(priorities))]
    else:
        priority = priorities
    return deadline_us, priority


class ArrivalProcess(ABC):
    """A deterministic source of :class:`InferenceRequest` sequences."""

    @abstractmethod
    def generate(self, count: int) -> Tuple[InferenceRequest, ...]:
        """The first ``count`` requests of the process's arrival sequence.

        Deterministic in the process's fields, and prefix-stable:
        ``generate(n) == generate(m)[:n]`` for ``n <= m``.
        """

    def _check_count(self, count: int) -> None:
        if count <= 0:
            raise ServingError(f"request count must be positive, got {count}")


@dataclass(frozen=True)
class FixedRateArrivals(ArrivalProcess):
    """One request every ``interval_us`` of simulated time, fixed lengths.

    ``deadline_slack_us`` (fixed, optional) gives every request an
    absolute deadline of ``arrival + slack``; ``priority`` tags every
    request with the same class.  Both default to the legacy no-QoS
    behavior.
    """

    interval_us: float
    prompt_tokens: int = 128
    decode_tokens: int = 16
    start_us: float = 0.0
    deadline_slack_us: Optional[float] = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.interval_us <= 0.0:
            raise ServingError(f"interval_us must be positive, got {self.interval_us}")
        if self.start_us < 0.0:
            raise ServingError(f"start_us must be non-negative, got {self.start_us}")
        _check_token_spec("prompt_tokens", self.prompt_tokens)
        _check_token_spec("decode_tokens", self.decode_tokens)
        if self.deadline_slack_us is not None and not (
            _is_real(self.deadline_slack_us) and self.deadline_slack_us > 0.0
        ):
            raise ServingError(
                f"deadline_slack_us must be positive, got {self.deadline_slack_us!r}"
            )
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise ServingError(f"priority must be an int, got {self.priority!r}")

    def generate(self, count: int) -> Tuple[InferenceRequest, ...]:
        self._check_count(count)
        slack = self.deadline_slack_us
        return tuple(
            InferenceRequest(
                request_id=index,
                arrival_us=self.start_us + index * self.interval_us,
                prompt_tokens=self.prompt_tokens,
                decode_tokens=self.decode_tokens,
                deadline_us=(
                    math.inf
                    if slack is None
                    else self.start_us + index * self.interval_us + slack
                ),
                priority=self.priority,
            )
            for index in range(count)
        )


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Seeded Poisson arrivals: exponential gaps at ``rate_rps`` requests/s.

    Prompt and decode lengths may be fixed ints or inclusive ``(low,
    high)`` ranges sampled (uniformly) from the same seeded RNG as the
    gaps, so one seed pins the entire workload — arrival times *and*
    length mix.

    ``deadline_slack_us`` and ``priorities`` attach QoS attributes
    sampled from a *derived* RNG (``Random(f"{seed}-qos")``), so enabling
    them leaves the arrival/length stream of an existing seed untouched.
    """

    rate_rps: float
    prompt_tokens: TokenSpec = 128
    decode_tokens: TokenSpec = 16
    seed: int = 0
    deadline_slack_us: SlackSpec = None
    priorities: PrioritySpec = 0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0.0:
            raise ServingError(f"rate_rps must be positive, got {self.rate_rps}")
        _check_token_spec("prompt_tokens", self.prompt_tokens)
        _check_token_spec("decode_tokens", self.decode_tokens)
        _check_slack_spec("deadline_slack_us", self.deadline_slack_us)
        _check_priority_spec("priorities", self.priorities)

    def generate(self, count: int) -> Tuple[InferenceRequest, ...]:
        self._check_count(count)
        rng = Random(self.seed)
        qos_rng = Random(f"{self.seed}-qos")
        rate_per_us = self.rate_rps / 1e6
        clock = 0.0
        requests = []
        for index in range(count):
            clock += rng.expovariate(rate_per_us)
            deadline_us, priority = _sample_qos(
                qos_rng, clock, self.deadline_slack_us, self.priorities
            )
            requests.append(
                InferenceRequest(
                    request_id=index,
                    arrival_us=clock,
                    prompt_tokens=_sample_tokens(rng, self.prompt_tokens),
                    decode_tokens=_sample_tokens(rng, self.decode_tokens),
                    deadline_us=deadline_us,
                    priority=priority,
                )
            )
        return tuple(requests)


@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replayed arrivals from an explicit trace.

    Entries are ``(arrival_us, prompt_tokens, decode_tokens)`` 3-tuples,
    ``(arrival_us, prompt_tokens, decode_tokens, deadline_us, priority)``
    5-tuples, or :class:`InferenceRequest` objects (e.g. the output of
    another process's :meth:`~ArrivalProcess.generate`).  Everything
    normalizes to tuples — requests with default QoS normalize down to
    3-tuples — so two traces describing the same arrivals compare equal.

    Every entry is validated at construction: arity, numeric types,
    finite non-negative arrivals (NaN used to slip through the monotone
    check and poison downstream inter-arrival gaps), and monotone
    ordering by arrival time.
    """

    trace: Tuple[Tuple[float, int, int], ...]

    def __post_init__(self) -> None:
        if not self.trace:
            raise ServingError("TraceArrivals needs a non-empty trace")
        normalized = []
        for position, entry in enumerate(self.trace):
            if isinstance(entry, InferenceRequest):
                if entry.deadline_us == math.inf and entry.priority == 0:
                    entry = (entry.arrival_us, entry.prompt_tokens, entry.decode_tokens)
                else:
                    entry = (
                        entry.arrival_us,
                        entry.prompt_tokens,
                        entry.decode_tokens,
                        entry.deadline_us,
                        entry.priority,
                    )
            elif isinstance(entry, (tuple, list)):
                entry = tuple(entry)
            else:
                raise ServingError(
                    f"trace entry {position} must be a tuple or InferenceRequest, "
                    f"got {type(entry).__name__}"
                )
            if len(entry) not in (3, 5):
                raise ServingError(
                    f"trace entry {position} must have 3 or 5 fields "
                    f"(arrival_us, prompt_tokens, decode_tokens[, deadline_us, "
                    f"priority]), got {len(entry)}"
                )
            arrival_us = entry[0]
            if not _is_real(arrival_us) or not math.isfinite(arrival_us):
                raise ServingError(
                    f"trace entry {position}: arrival_us must be a finite "
                    f"number, got {arrival_us!r}"
                )
            if arrival_us < 0.0:
                raise ServingError(
                    f"trace entry {position}: arrival_us must be non-negative, "
                    f"got {arrival_us}"
                )
            for name, value in (
                ("prompt_tokens", entry[1]),
                ("decode_tokens", entry[2]),
            ):
                if (
                    not isinstance(value, int)
                    or isinstance(value, bool)
                    or value <= 0
                ):
                    raise ServingError(
                        f"trace entry {position}: {name} must be a positive "
                        f"int, got {value!r}"
                    )
            if len(entry) == 5:
                deadline_us, priority = entry[3], entry[4]
                if (
                    not _is_real(deadline_us)
                    or math.isnan(deadline_us)
                    or not deadline_us > arrival_us
                ):
                    raise ServingError(
                        f"trace entry {position}: deadline_us must be a number "
                        f"past arrival ({arrival_us}), got {deadline_us!r}"
                    )
                if not isinstance(priority, int) or isinstance(priority, bool):
                    raise ServingError(
                        f"trace entry {position}: priority must be an int, "
                        f"got {priority!r}"
                    )
                if deadline_us == math.inf and priority == 0:
                    entry = entry[:3]
            normalized.append(entry)
        object.__setattr__(self, "trace", tuple(normalized))
        previous = 0.0
        for position, entry in enumerate(self.trace):
            arrival_us = entry[0]
            if arrival_us < previous:
                raise ServingError(
                    f"trace entry {position} arrives at {arrival_us} before its "
                    f"predecessor at {previous}; traces must be sorted by arrival"
                )
            previous = arrival_us

    def generate(self, count: int) -> Tuple[InferenceRequest, ...]:
        self._check_count(count)
        if count > len(self.trace):
            raise ServingError(
                f"trace holds {len(self.trace)} requests but {count} were asked for"
            )
        requests = []
        for index, entry in enumerate(self.trace[:count]):
            deadline_us = float(entry[3]) if len(entry) == 5 else math.inf
            priority = entry[4] if len(entry) == 5 else 0
            requests.append(
                InferenceRequest(
                    request_id=index,
                    arrival_us=float(entry[0]),
                    prompt_tokens=entry[1],
                    decode_tokens=entry[2],
                    deadline_us=deadline_us,
                    priority=priority,
                )
            )
        return tuple(requests)
