"""Continuous batching: iteration-level scheduling of admitted requests.

The batcher implements Orca-style *continuous* (iteration-level)
batching: instead of forming one batch and running it to completion, the
scheduler re-plans every iteration — finished sequences are evicted
immediately, and waiting requests are admitted as soon as slots and KV
budget free up, joining the decode batch mid-flight.

Planning rules (all deterministic):

* **Prefill priority** — when any queued request is admissible, the next
  iteration is a prefill of the admissible queue head(s); running
  sequences wait one iteration.  This is the standard
  prefill-prioritized discipline: it minimizes time-to-first-token at a
  small cost to decode throughput.
* **FIFO, head-of-line** — admission scans the queue in arrival order
  and stops at the first request that does not fit (no reordering), so
  latency is fair and the plan sequence is a pure function of the
  arrival sequence.
* **Budgets** — a request is admitted only when (1) the batch has a free
  slot (``max_batch``), (2) its *final* KV footprint (prompt + every
  decode token) fits the remaining ``max_kv_tokens`` budget — reserved
  up front, so a running sequence never needs preemption — and (3) the
  prefill batch stays under ``max_prefill_tokens`` (a lone oversized
  prompt is always admissible by itself, otherwise it would starve).

A prefill iteration produces each admitted request's **first** output
token (its TTFT event); each decode iteration produces one further token
for every running sequence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.common.validation import check_positive
from repro.errors import ServingError
from repro.serving.arrivals import InferenceRequest

__all__ = ["BatchPlan", "ContinuousBatcher"]

#: Iteration phases.
PREFILL = "prefill"
DECODE = "decode"


@dataclass(frozen=True)
class BatchPlan:
    """One scheduled iteration: which requests run and what shape they make.

    ``rows`` is the flattened new-token count (the GEMM row dimension);
    ``keys`` is the deepest attended context of the batch *after* this
    iteration's token is produced (the KV depth the kernels see).
    """

    phase: str
    request_ids: Tuple[int, ...]
    rows: int
    keys: int


class _ActiveSequence:
    """Bookkeeping of one admitted request: tokens generated so far."""

    __slots__ = ("request", "generated")

    def __init__(self, request: InferenceRequest) -> None:
        self.request = request
        self.generated = 0

    @property
    def context_after_next(self) -> int:
        """KV depth once the next token is produced: prompt + generated + 1."""
        return self.request.prompt_tokens + self.generated + 1

    @property
    def finished(self) -> bool:
        return self.generated >= self.request.decode_tokens


class ContinuousBatcher:
    """Iteration-level scheduler packing requests under batch/KV budgets."""

    def __init__(
        self,
        max_batch: int = 8,
        max_kv_tokens: int = 8192,
        max_prefill_tokens: int = 512,
    ) -> None:
        check_positive("max_batch", max_batch)
        check_positive("max_kv_tokens", max_kv_tokens)
        check_positive("max_prefill_tokens", max_prefill_tokens)
        self.max_batch = max_batch
        self.max_kv_tokens = max_kv_tokens
        self.max_prefill_tokens = max_prefill_tokens
        self._queue: Deque[InferenceRequest] = deque()
        self._active: Dict[int, _ActiveSequence] = {}
        #: KV tokens reserved by active sequences (final footprints).
        self._kv_reserved = 0

    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        return len(self._queue)

    @property
    def running(self) -> int:
        return len(self._active)

    @property
    def kv_reserved(self) -> int:
        return self._kv_reserved

    @property
    def idle(self) -> bool:
        return not self._queue and not self._active

    def enqueue(self, request: InferenceRequest) -> None:
        """Admit ``request`` to the waiting queue (FIFO).

        A request whose final KV footprint exceeds the whole budget could
        never be scheduled and is rejected immediately.
        """
        if request.total_tokens > self.max_kv_tokens:
            raise ServingError(
                f"request {request.request_id} needs {request.total_tokens} KV "
                f"tokens but the batcher budget is {self.max_kv_tokens}"
            )
        self._queue.append(request)

    # ------------------------------------------------------------------
    def next_plan(self) -> Optional[BatchPlan]:
        """Schedule the next iteration, or ``None`` when nothing can run.

        A returned prefill plan has already *admitted* its requests: they
        move from the queue into the running set and their KV budget is
        reserved.  Token progress happens later, in :meth:`advance`.
        """
        admitted = self._admit()
        if admitted:
            return BatchPlan(
                phase=PREFILL,
                request_ids=tuple(request.request_id for request in admitted),
                rows=sum(request.prompt_tokens for request in admitted),
                keys=max(request.prompt_tokens for request in admitted),
            )
        if self._active:
            return BatchPlan(
                phase=DECODE,
                request_ids=tuple(self._active),
                rows=len(self._active),
                keys=max(
                    sequence.context_after_next for sequence in self._active.values()
                ),
            )
        return None

    def _admit(self) -> Tuple[InferenceRequest, ...]:
        admitted = []
        prefill_tokens = 0
        while self._queue and len(self._active) + len(admitted) < self.max_batch:
            request = self._queue[0]
            reserved = self._kv_reserved + sum(r.total_tokens for r in admitted)
            if reserved + request.total_tokens > self.max_kv_tokens:
                break
            if admitted and prefill_tokens + request.prompt_tokens > self.max_prefill_tokens:
                break
            admitted.append(self._queue.popleft())
            prefill_tokens += request.prompt_tokens
        for request in admitted:
            self._active[request.request_id] = _ActiveSequence(request)
            self._kv_reserved += request.total_tokens
        return tuple(admitted)

    def advance(self, plan: BatchPlan) -> Tuple[int, ...]:
        """Apply ``plan``'s token progress; return the ids that finished.

        A prefill produces each admitted request's first token; a decode
        produces one token per running sequence.  Finished sequences are
        evicted and their KV reservation released.
        """
        if plan.phase not in (PREFILL, DECODE):
            raise ServingError(f"unknown batch phase {plan.phase!r}")
        finished = []
        for request_id in plan.request_ids:
            sequence = self._active.get(request_id)
            if sequence is None:
                raise ServingError(
                    f"plan references request {request_id} which is not running"
                )
            sequence.generated += 1
            if sequence.finished:
                finished.append(request_id)
        for request_id in finished:
            sequence = self._active.pop(request_id)
            self._kv_reserved -= sequence.request.total_tokens
        return tuple(finished)
