"""Continuous batching: iteration-level scheduling of admitted requests.

The batcher implements Orca-style *continuous* (iteration-level)
batching: instead of forming one batch and running it to completion, the
scheduler re-plans every iteration — finished sequences are evicted
immediately, and waiting requests are admitted as soon as slots and KV
budget free up, joining the decode batch mid-flight.

Planning rules (all deterministic):

* **Prefill priority** — when any queued request is admissible, the next
  iteration is a prefill of the admissible queue head(s); running
  sequences wait one iteration.  This is the standard
  prefill-prioritized discipline: it minimizes time-to-first-token at a
  small cost to decode throughput.
* **FIFO, head-of-line** — admission scans the queue in arrival order
  and stops at the first request that does not fit (no reordering), so
  latency is fair and the plan sequence is a pure function of the
  arrival sequence.  The ``"priority"`` shedding policy replaces the
  arrival order with ``(priority desc, arrival, request_id)``.
* **Budgets** — a request is admitted only when (1) the batch has a free
  slot (``max_batch``), (2) its *final* KV footprint (prompt + every
  decode token) fits the remaining ``max_kv_tokens`` budget — reserved
  up front, so decode growth can never overflow the budget mid-flight —
  and (3) the prefill batch stays under ``max_prefill_tokens`` (a lone
  oversized prompt is always admissible by itself, otherwise it would
  starve).

A prefill iteration produces each admitted request's **first** output
token (its TTFT event); each decode iteration produces one further token
for every running sequence.

Overload resilience (all off by default — the defaults reproduce the
legacy queue-forever behavior bit for bit):

* **Shedding policies** (``shed_policy=``) turn silent infinite queueing
  into structured :class:`ShedRecord` outcomes:

  - ``"none"`` — the legacy discipline: unbounded queue, nothing is
    ever shed.
  - ``"reject-on-full"`` — a bounded queue (``max_queue``); a newcomer
    that finds the queue full is shed with reason ``"queue-full"``.
  - ``"shed-expired"`` — additionally drops queued requests whose
    ``deadline_us`` has passed (reason ``"deadline-expired"``) at
    enqueue and planning time; with ``max_queue`` set, newcomers are
    rejected once the (post-sweep) queue is still full.
  - ``"priority"`` — the superset policy: admission scans in priority
    order, expired requests are shed, and a full queue sheds the
    *lowest-priority* entry (the newcomer included) instead of the
    newest.

* **Preemption** (``preemption=True``) lets the head-of-line candidate
  evict strictly-lower-priority *running* sequences: the victim's KV is
  dropped, its reservation released, and the request re-queued with its
  generated-token count preserved — on re-admission the prefill
  recomputes ``prompt + generated`` rows (restart-with-recompute, the
  vLLM-style recompute path) and the sequence continues where it left
  off.  An anti-thrash guard (``min_preempt_gap``) blocks re-preempting
  the same request within that many iterations.  Every eviction is
  recorded as a :class:`PreemptionRecord`.

Everything remains a pure function of the enqueue/plan call sequence —
no RNG is involved, so runs replay bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.validation import check_positive
from repro.errors import ServingError
from repro.serving.arrivals import InferenceRequest

__all__ = [
    "BatchPlan",
    "ContinuousBatcher",
    "ShedRecord",
    "PreemptionRecord",
    "SHED_POLICIES",
]

#: Iteration phases.
PREFILL = "prefill"
DECODE = "decode"

#: Recognized shedding policies, in increasing order of aggressiveness.
SHED_POLICIES = ("none", "reject-on-full", "shed-expired", "priority")

#: Shed reasons.
QUEUE_FULL = "queue-full"
DEADLINE_EXPIRED = "deadline-expired"


@dataclass(frozen=True)
class BatchPlan:
    """One scheduled iteration: which requests run and what shape they make.

    ``rows`` is the flattened new-token count (the GEMM row dimension);
    ``keys`` is the deepest attended context of the batch *after* this
    iteration's token is produced (the KV depth the kernels see).
    """

    phase: str
    request_ids: Tuple[int, ...]
    rows: int
    keys: int


@dataclass(frozen=True)
class ShedRecord:
    """One load-shedding decision: which request was dropped and why.

    ``queue_depth`` is the admission-queue depth *after* the shed (the
    shed request excluded); ``waited_us`` measures from the request's
    original arrival, so a preempted-then-shed request reports its whole
    lifetime.  ``generated_tokens`` is nonzero only for requests shed
    after a preemption — work that was done and then thrown away.
    """

    request_id: int
    reason: str
    shed_us: float
    queue_depth: int
    waited_us: float
    priority: int = 0
    generated_tokens: int = 0


@dataclass(frozen=True)
class PreemptionRecord:
    """One preemption: a running sequence evicted for a higher-priority one.

    ``generated_tokens`` is the progress thrown away (to be recomputed on
    re-admission — restart-vs-resume accounting); ``kv_released`` is the
    reservation returned to the budget (the victim's final footprint).
    """

    request_id: int
    iteration: int
    preempted_us: float
    generated_tokens: int
    kv_released: int
    priority: int = 0


class _QueueEntry:
    """One queued (or re-queued) request with its restart bookkeeping."""

    __slots__ = ("request", "enqueued_us", "generated", "preemptions", "last_preempt_iteration")

    def __init__(
        self, request: InferenceRequest, enqueued_us: float = 0.0, generated: int = 0
    ) -> None:
        self.request = request
        self.enqueued_us = enqueued_us
        #: Tokens already generated before a preemption (0 for fresh).
        self.generated = generated
        self.preemptions = 0
        self.last_preempt_iteration = -(10**9)

    @property
    def prefill_rows(self) -> int:
        """Rows the (re-)prefill computes: the prompt plus any tokens that
        must be recomputed after a preemption."""
        return self.request.prompt_tokens + self.generated


class _ActiveSequence:
    """Bookkeeping of one admitted request: tokens generated so far."""

    __slots__ = (
        "request",
        "generated",
        "admitted_iteration",
        "preemptions",
        "last_preempt_iteration",
    )

    def __init__(self, entry: _QueueEntry, admitted_iteration: int = 0) -> None:
        self.request = entry.request
        self.generated = entry.generated
        self.admitted_iteration = admitted_iteration
        self.preemptions = entry.preemptions
        self.last_preempt_iteration = entry.last_preempt_iteration

    @property
    def context_after_next(self) -> int:
        """KV depth once the next token is produced: prompt + generated + 1."""
        return self.request.prompt_tokens + self.generated + 1

    @property
    def finished(self) -> bool:
        return self.generated >= self.request.decode_tokens


class ContinuousBatcher:
    """Iteration-level scheduler packing requests under batch/KV budgets."""

    def __init__(
        self,
        max_batch: int = 8,
        max_kv_tokens: int = 8192,
        max_prefill_tokens: int = 512,
        shed_policy: str = "none",
        max_queue: Optional[int] = None,
        preemption: bool = False,
        min_preempt_gap: int = 2,
    ) -> None:
        check_positive("max_batch", max_batch)
        check_positive("max_kv_tokens", max_kv_tokens)
        check_positive("max_prefill_tokens", max_prefill_tokens)
        if shed_policy not in SHED_POLICIES:
            raise ServingError(
                f"unknown shed_policy {shed_policy!r}; expected one of {SHED_POLICIES}"
            )
        if max_queue is not None:
            check_positive("max_queue", max_queue)
            if shed_policy == "none":
                raise ServingError(
                    'max_queue requires a shedding policy; shed_policy="none" '
                    "queues without bound"
                )
        elif shed_policy == "reject-on-full":
            raise ServingError('shed_policy="reject-on-full" requires max_queue')
        check_positive("min_preempt_gap", min_preempt_gap)
        if preemption and shed_policy != "priority":
            raise ServingError(
                'preemption=True requires shed_policy="priority" (victims are '
                "chosen by priority)"
            )
        self.max_batch = max_batch
        self.max_kv_tokens = max_kv_tokens
        self.max_prefill_tokens = max_prefill_tokens
        self.shed_policy = shed_policy
        self.max_queue = max_queue
        self.preemption = preemption
        self.min_preempt_gap = min_preempt_gap
        self._queue: List[_QueueEntry] = []
        self._active: Dict[int, _ActiveSequence] = {}
        #: KV tokens reserved by active sequences (final footprints).
        self._kv_reserved = 0
        #: Highest KV reservation ever held (for budget-never-exceeded checks).
        self.kv_reserved_peak = 0
        #: Plans returned so far (the anti-thrash guard's clock).
        self.iteration = 0
        self.shed_records: List[ShedRecord] = []
        self.preemption_records: List[PreemptionRecord] = []
        #: Generated tokens thrown away by preemptions (recompute cost).
        self.restarted_tokens = 0
        self._shed_cursor = 0
        self._preempt_cursor = 0

    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        return len(self._queue)

    @property
    def running(self) -> int:
        return len(self._active)

    @property
    def kv_reserved(self) -> int:
        return self._kv_reserved

    @property
    def preemptions(self) -> int:
        return len(self.preemption_records)

    @property
    def shed(self) -> int:
        return len(self.shed_records)

    @property
    def idle(self) -> bool:
        return not self._queue and not self._active

    def oldest_queued(self) -> Optional[_QueueEntry]:
        """The queued entry with the earliest original arrival, if any."""
        if not self._queue:
            return None
        return min(
            self._queue, key=lambda e: (e.request.arrival_us, e.request.request_id)
        )

    def drain_shed(self) -> Tuple[ShedRecord, ...]:
        """Shed records appended since the previous drain."""
        records = tuple(self.shed_records[self._shed_cursor :])
        self._shed_cursor = len(self.shed_records)
        return records

    def drain_preemptions(self) -> Tuple[PreemptionRecord, ...]:
        """Preemption records appended since the previous drain."""
        records = tuple(self.preemption_records[self._preempt_cursor :])
        self._preempt_cursor = len(self.preemption_records)
        return records

    # ------------------------------------------------------------------
    def enqueue(
        self, request: InferenceRequest, now_us: float = 0.0
    ) -> Optional[ShedRecord]:
        """Admit ``request`` to the waiting queue.

        A request whose final KV footprint exceeds the whole budget could
        never be scheduled and is rejected immediately (an error, not a
        shed: the scenario is inconsistent).  Under a shedding policy the
        request may instead be shed — expired on arrival, or squeezed out
        of a full queue — in which case the :class:`ShedRecord` is
        returned (and also appended to :attr:`shed_records`).
        """
        if request.total_tokens > self.max_kv_tokens:
            raise ServingError(
                f"request {request.request_id} needs {request.total_tokens} KV "
                f"tokens but the batcher budget is {self.max_kv_tokens}"
            )
        return self._admit_to_queue(_QueueEntry(request, enqueued_us=now_us), now_us)

    def readmit(
        self, request: InferenceRequest, generated: int, now_us: float = 0.0
    ) -> Optional[ShedRecord]:
        """Re-queue a request whose completion was lost downstream.

        The chaos layer's ``drop_completion`` fault uses this: the
        sequence finished but its completion never reached the client, so
        the request re-enters the queue with ``generated`` tokens already
        produced (the re-prefill recomputes them).  Subject to the same
        shedding policy as a fresh enqueue.
        """
        if not 0 <= generated < request.decode_tokens:
            raise ServingError(
                f"request {request.request_id}: generated must be in "
                f"[0, {request.decode_tokens}), got {generated}"
            )
        entry = _QueueEntry(request, enqueued_us=now_us, generated=generated)
        return self._admit_to_queue(entry, now_us)

    def _admit_to_queue(
        self, entry: _QueueEntry, now_us: float
    ) -> Optional[ShedRecord]:
        expires = self.shed_policy in ("shed-expired", "priority")
        if expires and entry.request.expired(now_us):
            return self._shed(entry, DEADLINE_EXPIRED, now_us)
        if self.max_queue is not None and len(self._queue) >= self.max_queue:
            if expires:
                self._shed_expired(now_us)
        if self.max_queue is not None and len(self._queue) >= self.max_queue:
            if self.shed_policy == "priority":
                victim = min(
                    self._queue + [entry],
                    key=lambda e: (
                        e.request.priority,
                        -e.request.arrival_us,
                        -e.request.request_id,
                    ),
                )
                if victim is not entry:
                    self._queue.remove(victim)
                    self._queue.append(entry)
                return self._shed(victim, QUEUE_FULL, now_us)
            return self._shed(entry, QUEUE_FULL, now_us)
        self._queue.append(entry)
        return None

    def _shed(self, entry: _QueueEntry, reason: str, now_us: float) -> ShedRecord:
        record = ShedRecord(
            request_id=entry.request.request_id,
            reason=reason,
            shed_us=now_us,
            queue_depth=len(self._queue),
            waited_us=max(0.0, now_us - entry.request.arrival_us),
            priority=entry.request.priority,
            generated_tokens=entry.generated,
        )
        self.shed_records.append(record)
        return record

    def _shed_expired(self, now_us: float) -> None:
        for entry in [e for e in self._queue if e.request.expired(now_us)]:
            self._queue.remove(entry)
            self._shed(entry, DEADLINE_EXPIRED, now_us)

    # ------------------------------------------------------------------
    def next_plan(self, now_us: float = 0.0) -> Optional[BatchPlan]:
        """Schedule the next iteration, or ``None`` when nothing can run.

        A returned prefill plan has already *admitted* its requests: they
        move from the queue into the running set and their KV budget is
        reserved.  Token progress happens later, in :meth:`advance`.

        Deadline-aware policies first sweep expired entries out of the
        queue (check :meth:`drain_shed` after every call); the
        ``"priority"`` policy with ``preemption=True`` may also evict
        running sequences to make room for the head-of-line candidate.
        """
        if self.shed_policy in ("shed-expired", "priority"):
            self._shed_expired(now_us)
        admitted = self._admit(now_us)
        if admitted:
            self.iteration += 1
            return BatchPlan(
                phase=PREFILL,
                request_ids=tuple(e.request.request_id for e in admitted),
                rows=sum(e.prefill_rows for e in admitted),
                keys=max(e.prefill_rows for e in admitted),
            )
        if self._active:
            self.iteration += 1
            return BatchPlan(
                phase=DECODE,
                request_ids=tuple(self._active),
                rows=len(self._active),
                keys=max(
                    sequence.context_after_next for sequence in self._active.values()
                ),
            )
        return None

    def _ordered_queue(self) -> List[_QueueEntry]:
        if self.shed_policy == "priority":
            return sorted(
                self._queue,
                key=lambda e: (
                    -e.request.priority,
                    e.request.arrival_us,
                    e.request.request_id,
                ),
            )
        return list(self._queue)

    def _admit(self, now_us: float) -> Tuple[_QueueEntry, ...]:
        admitted: List[_QueueEntry] = []
        prefill_tokens = 0
        preempt_attempted = False
        # Scan a snapshot: sequences preempted during this pass re-enter
        # the queue but are not reconsidered until the next plan (that
        # would be admit-after-evict thrash within one iteration).
        for entry in self._ordered_queue():
            if entry not in self._queue:
                continue  # shed while re-queueing a preemption victim
            request = entry.request
            pending_kv = sum(e.request.total_tokens for e in admitted)
            slot_free = len(self._active) + len(admitted) < self.max_batch
            kv_free = (
                self._kv_reserved + pending_kv + request.total_tokens
                <= self.max_kv_tokens
            )
            if not (slot_free and kv_free):
                if self.preemption and not preempt_attempted:
                    preempt_attempted = True
                    if self._make_room(entry, pending_kv, len(admitted), now_us):
                        slot_free = (
                            len(self._active) + len(admitted) < self.max_batch
                        )
                        kv_free = (
                            self._kv_reserved + pending_kv + request.total_tokens
                            <= self.max_kv_tokens
                        )
                if not (slot_free and kv_free):
                    break
            if admitted and prefill_tokens + entry.prefill_rows > self.max_prefill_tokens:
                break
            self._queue.remove(entry)
            admitted.append(entry)
            prefill_tokens += entry.prefill_rows
        for entry in admitted:
            self._active[entry.request.request_id] = _ActiveSequence(
                entry, admitted_iteration=self.iteration
            )
            self._kv_reserved += entry.request.total_tokens
        if self._kv_reserved > self.kv_reserved_peak:
            self.kv_reserved_peak = self._kv_reserved
        return tuple(admitted)

    def _make_room(
        self,
        candidate: _QueueEntry,
        pending_kv: int,
        pending_slots: int,
        now_us: float,
    ) -> bool:
        """Try to evict lower-priority running sequences for ``candidate``.

        Victims are planned first and only evicted when the full set
        makes the candidate fit — a preemption that would not let the
        candidate in is not performed at all.  Victim order: lowest
        priority first, then most recently admitted (LIFO — the least
        sunk work), then highest request id.
        """
        request = candidate.request
        eligible = [
            seq
            for seq in self._active.values()
            if seq.request.priority < request.priority
            and self.iteration - seq.last_preempt_iteration >= self.min_preempt_gap
        ]
        eligible.sort(
            key=lambda s: (
                s.request.priority,
                -s.admitted_iteration,
                -s.request.request_id,
            )
        )
        victims: List[_ActiveSequence] = []
        freed_kv = 0
        for seq in eligible:
            kv_ok = (
                self._kv_reserved - freed_kv + pending_kv + request.total_tokens
                <= self.max_kv_tokens
            )
            slot_ok = (
                len(self._active) - len(victims) + pending_slots < self.max_batch
            )
            if kv_ok and slot_ok:
                break
            victims.append(seq)
            freed_kv += seq.request.total_tokens
        kv_ok = (
            self._kv_reserved - freed_kv + pending_kv + request.total_tokens
            <= self.max_kv_tokens
        )
        slot_ok = len(self._active) - len(victims) + pending_slots < self.max_batch
        if not (kv_ok and slot_ok):
            return False
        for seq in victims:
            self._preempt(seq, now_us)
        return True

    def _preempt(self, seq: _ActiveSequence, now_us: float) -> None:
        del self._active[seq.request.request_id]
        self._kv_reserved -= seq.request.total_tokens
        self.preemption_records.append(
            PreemptionRecord(
                request_id=seq.request.request_id,
                iteration=self.iteration,
                preempted_us=now_us,
                generated_tokens=seq.generated,
                kv_released=seq.request.total_tokens,
                priority=seq.request.priority,
            )
        )
        self.restarted_tokens += seq.generated
        entry = _QueueEntry(seq.request, enqueued_us=now_us, generated=seq.generated)
        entry.preemptions = seq.preemptions + 1
        entry.last_preempt_iteration = self.iteration
        self._admit_to_queue(entry, now_us)

    def advance(self, plan: BatchPlan) -> Tuple[int, ...]:
        """Apply ``plan``'s token progress; return the ids that finished.

        A prefill produces each admitted request's first token; a decode
        produces one token per running sequence.  Finished sequences are
        evicted and their KV reservation released.
        """
        if plan.phase not in (PREFILL, DECODE):
            raise ServingError(f"unknown batch phase {plan.phase!r}")
        finished = []
        for request_id in plan.request_ids:
            sequence = self._active.get(request_id)
            if sequence is None:
                raise ServingError(
                    f"plan references request {request_id} which is not running"
                )
            sequence.generated += 1
            if sequence.finished:
                finished.append(request_id)
        for request_id in finished:
            sequence = self._active.pop(request_id)
            self._kv_reserved -= sequence.request.total_tokens
        return tuple(finished)
