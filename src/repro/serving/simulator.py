"""The virtual-time serving loop: arrivals -> batches -> simulated GPU time.

:class:`ServingSimulator` advances a virtual clock through an open-loop
serving scenario.  Each cycle it admits every request that has arrived,
asks the :class:`~repro.serving.batcher.ContinuousBatcher` for the next
iteration plan, materializes the plan's bucketed batch shape as a
transformer-layer :class:`~repro.pipeline.PipelineGraph`
(:class:`~repro.models.serving.ServingGraphCache`), and charges the
iteration the **simulated** GPU time of running that graph under the
scenario's scheme — obtained through
:meth:`~repro.pipeline.Session.sweep_point`, so a repeated batch shape
replays from the session's sweep cache (and the disk store, when one is
attached) instead of re-simulating.  An idle system jumps the clock to
the next arrival.

Everything is deterministic for a given scenario: seeded arrivals, FIFO
admission, deterministic simulation.  Two runs with the same scenario
and scheme produce ``==`` :class:`~repro.serving.metrics.LatencyReport`
objects — the serving determinism contract, asserted in the test suite
and gateable in CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ServingError
from repro.gpu.arch import ArchLike, TESLA_V100, resolve_arch
from repro.models.config import GPT3_145B, TransformerConfig
from repro.models.serving import ServingGraphCache
from repro.pipeline.session import Session, SweepPoint, SweepPolicy
from repro.serving.arrivals import ArrivalProcess, InferenceRequest
from repro.serving.batcher import BatchPlan, ContinuousBatcher, PREFILL
from repro.serving.metrics import LatencyReport, RequestRecord

__all__ = ["ServingScenario", "ServingSimulator", "compare_schemes"]


@dataclass(frozen=True)
class ServingScenario:
    """One complete open-loop serving experiment description.

    A scenario is pure data: the traffic (``arrivals`` + ``requests``),
    the model shape, the batcher budgets, the shape buckets the graph
    cache uses, a per-iteration scheduling overhead, and the latency SLO
    that defines goodput.  The same scenario object can be run under
    every scheme/arch for an apples-to-apples comparison.
    """

    arrivals: ArrivalProcess
    requests: int
    config: TransformerConfig = GPT3_145B
    max_batch: int = 8
    max_kv_tokens: int = 8192
    max_prefill_tokens: int = 512
    row_bucket: int = 8
    kv_bucket: int = 64
    #: Fixed scheduling/launch overhead charged per iteration, in
    #: simulated microseconds (CPU-side batching work the GPU graph does
    #: not model).
    iteration_overhead_us: float = 0.0
    #: Total-latency SLO defining goodput; infinite = goodput==throughput.
    slo_us: float = math.inf

    def __post_init__(self) -> None:
        if self.requests <= 0:
            raise ServingError(f"requests must be positive, got {self.requests}")
        if self.iteration_overhead_us < 0.0:
            raise ServingError(
                f"iteration_overhead_us must be non-negative, "
                f"got {self.iteration_overhead_us}"
            )
        if self.slo_us <= 0.0:
            raise ServingError(f"slo_us must be positive, got {self.slo_us}")


class _RequestTiming:
    """Mutable per-request event times collected during the loop."""

    __slots__ = ("request", "prefill_start_us", "prefill_end_us", "finish_us")

    def __init__(self, request: InferenceRequest) -> None:
        self.request = request
        self.prefill_start_us = -1.0
        self.prefill_end_us = -1.0
        self.finish_us = -1.0

    def record(self) -> RequestRecord:
        request = self.request
        return RequestRecord(
            request_id=request.request_id,
            arrival_us=request.arrival_us,
            prompt_tokens=request.prompt_tokens,
            decode_tokens=request.decode_tokens,
            queue_us=self.prefill_start_us - request.arrival_us,
            prefill_us=self.prefill_end_us - self.prefill_start_us,
            decode_us=self.finish_us - self.prefill_end_us,
            total_us=self.finish_us - request.arrival_us,
            ttft_us=self.prefill_end_us - request.arrival_us,
            finish_us=self.finish_us,
        )


class ServingSimulator:
    """Run open-loop serving scenarios on the simulated GPU.

    One simulator binds an execution configuration — scheme, policy,
    architecture — and a :class:`~repro.pipeline.Session` whose sweep
    cache persists across :meth:`run` calls (pass ``session=`` to share
    one, e.g. with a ``result_store`` attached for cross-process reuse).
    """

    def __init__(
        self,
        scheme: str = "cusync",
        policy: SweepPolicy = "TileSync",
        arch: ArchLike = TESLA_V100,
        session: Optional[Session] = None,
    ) -> None:
        self.scheme = scheme
        #: Non-cusync schemes have no policy axis.
        self.policy = policy if scheme == "cusync" else None
        self.arch = resolve_arch(arch)
        self.session = session if session is not None else Session(arch=arch)

    # ------------------------------------------------------------------
    def run(self, scenario: ServingScenario) -> LatencyReport:
        """Simulate ``scenario`` to completion and report latencies."""
        requests = scenario.arrivals.generate(scenario.requests)
        batcher = ContinuousBatcher(
            max_batch=scenario.max_batch,
            max_kv_tokens=scenario.max_kv_tokens,
            max_prefill_tokens=scenario.max_prefill_tokens,
        )
        graphs = ServingGraphCache(
            config=scenario.config,
            arch=self.arch,
            row_bucket=scenario.row_bucket,
            kv_bucket=scenario.kv_bucket,
        )
        timings: Dict[int, _RequestTiming] = {
            request.request_id: _RequestTiming(request) for request in requests
        }
        cache_hits_before = self.session.sweep_cache_hits
        cache_misses_before = self.session.sweep_cache_misses
        store_hits_before = self.session.sweep_store_hits

        pending: List[InferenceRequest] = sorted(
            requests, key=lambda request: (request.arrival_us, request.request_id)
        )
        next_arrival = 0
        clock = 0.0
        completed = 0
        iterations = prefill_iterations = decode_iterations = 0
        records: List[RequestRecord] = []

        while completed < len(requests):
            while (
                next_arrival < len(pending)
                and pending[next_arrival].arrival_us <= clock
            ):
                batcher.enqueue(pending[next_arrival])
                next_arrival += 1
            plan = batcher.next_plan()
            if plan is None:
                if next_arrival >= len(pending):
                    raise ServingError(
                        "serving loop stalled: nothing runnable and no "
                        "arrivals left (batcher invariant violated)"
                    )
                # Idle: jump the virtual clock to the next arrival.
                clock = max(clock, pending[next_arrival].arrival_us)
                continue
            duration_us = self._iteration_time_us(graphs, plan, scenario)
            start_us = clock
            clock += duration_us
            iterations += 1
            if plan.phase == PREFILL:
                prefill_iterations += 1
                for request_id in plan.request_ids:
                    timing = timings[request_id]
                    timing.prefill_start_us = start_us
                    timing.prefill_end_us = clock
            else:
                decode_iterations += 1
            for request_id in batcher.advance(plan):
                timing = timings[request_id]
                timing.finish_us = clock
                records.append(timing.record())
                completed += 1

        records.sort(key=lambda record: record.request_id)
        policy_label = "" if self.policy is None else (
            self.policy if isinstance(self.policy, str) else self.policy.label()
        )
        return LatencyReport.from_records(
            records,
            scheme=self.scheme,
            policy=policy_label,
            arch=self.arch.name,
            requests=len(requests),
            simulated_us=clock,
            iterations=iterations,
            prefill_iterations=prefill_iterations,
            decode_iterations=decode_iterations,
            distinct_shapes=graphs.distinct_shapes,
            sweep_cache_hits=self.session.sweep_cache_hits - cache_hits_before,
            sweep_cache_misses=self.session.sweep_cache_misses - cache_misses_before,
            store_hits=self.session.sweep_store_hits - store_hits_before,
            slo_us=scenario.slo_us,
        )

    def _iteration_time_us(
        self,
        graphs: ServingGraphCache,
        plan: BatchPlan,
        scenario: ServingScenario,
    ) -> float:
        graph = graphs.graph_for(plan.rows, plan.keys)
        result = self.session.sweep_point(graph, SweepPoint(
            scheme=self.scheme, policy=self.policy, arch=self.arch,
        ))
        return result.total_time_us + scenario.iteration_overhead_us


def compare_schemes(
    scenario: ServingScenario,
    schemes: Sequence[str] = ("streamsync", "streamk", "cusync"),
    policy: SweepPolicy = "TileSync",
    arch: ArchLike = TESLA_V100,
    session: Optional[Session] = None,
) -> Dict[str, LatencyReport]:
    """Run ``scenario`` under every scheme and collect the reports.

    All schemes share one :class:`~repro.pipeline.Session` (pass your own
    to persist its caches further), so the per-scheme cache hit counts in
    the reports tell the serving-cache story of each scheme's run alone —
    trace keys include the scheme, so schemes never share entries.
    """
    shared = session if session is not None else Session(arch=arch)
    reports: Dict[str, LatencyReport] = {}
    for scheme in schemes:
        simulator = ServingSimulator(
            scheme=scheme, policy=policy, arch=arch, session=shared
        )
        reports[scheme] = simulator.run(scenario)
    return reports
