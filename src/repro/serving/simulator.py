"""The virtual-time serving loop: arrivals -> batches -> simulated GPU time.

:class:`ServingSimulator` advances a virtual clock through an open-loop
serving scenario.  Each cycle it admits every request that has arrived,
asks the :class:`~repro.serving.batcher.ContinuousBatcher` for the next
iteration plan, materializes the plan's bucketed batch shape as a
transformer-layer :class:`~repro.pipeline.PipelineGraph`
(:class:`~repro.models.serving.ServingGraphCache`), and charges the
iteration the **simulated** GPU time of running that graph under the
scenario's scheme — obtained through
:meth:`~repro.pipeline.Session.sweep_point`, so a repeated batch shape
replays from the session's sweep cache (and the disk store, when one is
attached) instead of re-simulating.  An idle system jumps the clock to
the next arrival.

Overload semantics: the loop runs until every generated request is
*terminally resolved* — completed or shed.  Shed records drained from
the batcher count toward resolution, so a bounded-queue scenario under
2x overload still terminates (the legacy ``"none"`` policy queues
forever and merely finishes late).  Watchdogs (``max_iterations`` /
``max_sim_time_us`` on the scenario) raise a structured
:class:`~repro.errors.ServingStallError` with queue forensics instead of
letting a mis-sized scenario spin — the serving mirror of the
simulator-core ``LivelockError``.

A :class:`~repro.testing.faults.ServingFaultPlan` may be threaded
through :meth:`ServingSimulator.run` for request-level chaos: straggler
iterations (duration multipliers), dropped completions (the request is
re-queued and recomputed), and burst arrival spikes.  Faults never touch
the sweep cache — they perturb the serving loop, not the kernel costs —
so a fault-free replay of the same scenario stays bit-identical.

Everything is deterministic for a given scenario (and fault plan):
seeded arrivals, deterministic admission, deterministic simulation.  Two
runs with the same inputs produce ``==``
:class:`~repro.serving.metrics.LatencyReport` objects — the serving
determinism contract, asserted in the test suite and gateable in CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.errors import ServingError, ServingStallError
from repro.gpu.arch import ArchLike, TESLA_V100, resolve_arch
from repro.models.config import GPT3_145B, TransformerConfig
from repro.models.serving import ServingGraphCache
from repro.pipeline.session import Session, SweepPoint, SweepPolicy
from repro.serving.arrivals import ArrivalProcess, InferenceRequest
from repro.serving.batcher import (
    BatchPlan,
    ContinuousBatcher,
    PREFILL,
    ShedRecord,
)
from repro.serving.metrics import LatencyReport, RequestRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.testing.faults import ServingFaultPlan

__all__ = ["ServingScenario", "ServingSimulator", "compare_schemes"]


@dataclass(frozen=True)
class ServingScenario:
    """One complete open-loop serving experiment description.

    A scenario is pure data: the traffic (``arrivals`` + ``requests``),
    the model shape, the batcher budgets, the shape buckets the graph
    cache uses, a per-iteration scheduling overhead, and the latency SLO
    that defines goodput.  The same scenario object can be run under
    every scheme/arch for an apples-to-apples comparison.

    The overload knobs (``shed_policy``, ``max_queue``, ``preemption``,
    ``min_preempt_gap``) configure the batcher's admission control — see
    :class:`~repro.serving.batcher.ContinuousBatcher`; the watchdog
    limits (``max_iterations``, ``max_sim_time_us``) bound the loop and
    raise :class:`~repro.errors.ServingStallError` when exceeded.  All
    default to the legacy run-forever behavior.
    """

    arrivals: ArrivalProcess
    requests: int
    config: TransformerConfig = GPT3_145B
    max_batch: int = 8
    max_kv_tokens: int = 8192
    max_prefill_tokens: int = 512
    row_bucket: int = 8
    kv_bucket: int = 64
    #: Fixed scheduling/launch overhead charged per iteration, in
    #: simulated microseconds (CPU-side batching work the GPU graph does
    #: not model).
    iteration_overhead_us: float = 0.0
    #: Total-latency SLO defining goodput; infinite = goodput==throughput.
    slo_us: float = math.inf
    shed_policy: str = "none"
    max_queue: Optional[int] = None
    preemption: bool = False
    min_preempt_gap: int = 2
    #: Watchdog: iteration-count guard (None = unbounded).
    max_iterations: Optional[int] = None
    #: Watchdog: simulated-time guard in microseconds (None = unbounded).
    max_sim_time_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.requests <= 0:
            raise ServingError(f"requests must be positive, got {self.requests}")
        if self.iteration_overhead_us < 0.0:
            raise ServingError(
                f"iteration_overhead_us must be non-negative, "
                f"got {self.iteration_overhead_us}"
            )
        if self.slo_us <= 0.0:
            raise ServingError(f"slo_us must be positive, got {self.slo_us}")
        if self.max_iterations is not None and self.max_iterations <= 0:
            raise ServingError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if self.max_sim_time_us is not None and self.max_sim_time_us <= 0.0:
            raise ServingError(
                f"max_sim_time_us must be positive, got {self.max_sim_time_us}"
            )


class _RequestTiming:
    """Mutable per-request event times collected during the loop."""

    __slots__ = ("request", "prefill_start_us", "prefill_end_us", "finish_us")

    def __init__(self, request: InferenceRequest) -> None:
        self.request = request
        self.prefill_start_us = -1.0
        self.prefill_end_us = -1.0
        self.finish_us = -1.0

    def record(self, preemptions: int = 0) -> RequestRecord:
        request = self.request
        return RequestRecord(
            request_id=request.request_id,
            arrival_us=request.arrival_us,
            prompt_tokens=request.prompt_tokens,
            decode_tokens=request.decode_tokens,
            queue_us=self.prefill_start_us - request.arrival_us,
            prefill_us=self.prefill_end_us - self.prefill_start_us,
            decode_us=self.finish_us - self.prefill_end_us,
            total_us=self.finish_us - request.arrival_us,
            ttft_us=self.prefill_end_us - request.arrival_us,
            finish_us=self.finish_us,
            priority=request.priority,
            deadline_us=request.deadline_us,
            preemptions=preemptions,
        )


class ServingSimulator:
    """Run open-loop serving scenarios on the simulated GPU.

    One simulator binds an execution configuration — scheme, policy,
    architecture — and a :class:`~repro.pipeline.Session` whose sweep
    cache persists across :meth:`run` calls (pass ``session=`` to share
    one, e.g. with a ``result_store`` attached for cross-process reuse).
    """

    def __init__(
        self,
        scheme: str = "cusync",
        policy: SweepPolicy = "TileSync",
        arch: ArchLike = TESLA_V100,
        session: Optional[Session] = None,
    ) -> None:
        self.scheme = scheme
        #: Non-cusync schemes have no policy axis.
        self.policy = policy if scheme == "cusync" else None
        self.arch = resolve_arch(arch)
        self.session = session if session is not None else Session(arch=arch)

    # ------------------------------------------------------------------
    def run(
        self,
        scenario: ServingScenario,
        faults: Optional["ServingFaultPlan"] = None,
    ) -> LatencyReport:
        """Simulate ``scenario`` to (terminal) resolution and report.

        With ``faults`` set, the seeded request-level chaos plan is
        applied: burst spikes rewrite the arrival schedule up front,
        straggler multipliers stretch individual iterations, and dropped
        completions re-queue their request for recomputation.
        """
        requests = scenario.arrivals.generate(scenario.requests)
        if faults is not None:
            requests = faults.apply_to_arrivals(requests)
        batcher = ContinuousBatcher(
            max_batch=scenario.max_batch,
            max_kv_tokens=scenario.max_kv_tokens,
            max_prefill_tokens=scenario.max_prefill_tokens,
            shed_policy=scenario.shed_policy,
            max_queue=scenario.max_queue,
            preemption=scenario.preemption,
            min_preempt_gap=scenario.min_preempt_gap,
        )
        graphs = ServingGraphCache(
            config=scenario.config,
            arch=self.arch,
            row_bucket=scenario.row_bucket,
            kv_bucket=scenario.kv_bucket,
        )
        timings: Dict[int, _RequestTiming] = {
            request.request_id: _RequestTiming(request) for request in requests
        }
        cache_hits_before = self.session.sweep_cache_hits
        cache_misses_before = self.session.sweep_cache_misses
        store_hits_before = self.session.sweep_store_hits

        pending: List[InferenceRequest] = sorted(
            requests, key=lambda request: (request.arrival_us, request.request_id)
        )
        next_arrival = 0
        clock = 0.0
        completed = 0
        resolved = 0
        iterations = prefill_iterations = decode_iterations = 0
        records: List[RequestRecord] = []
        shed_records: List[ShedRecord] = []
        preempt_counts: Dict[int, int] = {}
        dropped_once: set = set()

        def drain() -> None:
            nonlocal resolved
            for record in batcher.drain_shed():
                shed_records.append(record)
                resolved += 1
            for record in batcher.drain_preemptions():
                preempt_counts[record.request_id] = (
                    preempt_counts.get(record.request_id, 0) + 1
                )

        def stall(guard: str, limit: float) -> ServingStallError:
            oldest = batcher.oldest_queued()
            return ServingStallError(
                f"serving loop exceeded {guard}={limit:g} with "
                f"{len(requests) - resolved} request(s) unresolved",
                guard=guard,
                iterations=iterations,
                simulated_time_us=clock,
                completed=completed,
                shed=len(shed_records),
                total_requests=len(requests),
                queue_depth=batcher.queued,
                running=batcher.running,
                kv_reserved=batcher.kv_reserved,
                oldest_request_id=(
                    None if oldest is None else oldest.request.request_id
                ),
                oldest_waited_us=(
                    0.0 if oldest is None else clock - oldest.request.arrival_us
                ),
                limit=limit,
            )

        while resolved < len(requests):
            while (
                next_arrival < len(pending)
                and pending[next_arrival].arrival_us <= clock
            ):
                batcher.enqueue(pending[next_arrival], now_us=clock)
                next_arrival += 1
            plan = batcher.next_plan(now_us=clock)
            drain()
            if plan is None:
                if resolved >= len(requests):
                    break
                if next_arrival >= len(pending):
                    raise ServingError(
                        "serving loop stalled: nothing runnable and no "
                        "arrivals left (batcher invariant violated)"
                    )
                # Idle: jump the virtual clock to the next arrival.
                clock = max(clock, pending[next_arrival].arrival_us)
                continue
            iterations += 1
            if (
                scenario.max_iterations is not None
                and iterations > scenario.max_iterations
            ):
                raise stall("max_iterations", float(scenario.max_iterations))
            duration_us = self._iteration_time_us(graphs, plan, scenario)
            if faults is not None:
                duration_us *= faults.straggler_factor(iterations - 1)
            start_us = clock
            clock += duration_us
            if (
                scenario.max_sim_time_us is not None
                and clock > scenario.max_sim_time_us
            ):
                raise stall("max_sim_time_us", scenario.max_sim_time_us)
            if plan.phase == PREFILL:
                prefill_iterations += 1
                for request_id in plan.request_ids:
                    timing = timings[request_id]
                    # Only the first prefill sets TTFT: a preemption
                    # restart recomputes tokens already streamed out.
                    if timing.prefill_start_us < 0.0:
                        timing.prefill_start_us = start_us
                        timing.prefill_end_us = clock
            else:
                decode_iterations += 1
            for request_id in batcher.advance(plan):
                timing = timings[request_id]
                if (
                    faults is not None
                    and faults.drops_completion(request_id)
                    and request_id not in dropped_once
                ):
                    # The sequence finished but its completion was lost:
                    # re-queue for recomputation of the final token.  The
                    # request stays unresolved until it completes (or is
                    # shed) on the retry.
                    dropped_once.add(request_id)
                    batcher.readmit(
                        timing.request,
                        generated=timing.request.decode_tokens - 1,
                        now_us=clock,
                    )
                    continue
                timing.finish_us = clock
                records.append(timing.record(preempt_counts.get(request_id, 0)))
                completed += 1
                resolved += 1
            drain()

        records.sort(key=lambda record: record.request_id)
        shed_records.sort(key=lambda record: (record.shed_us, record.request_id))
        policy_label = "" if self.policy is None else (
            self.policy if isinstance(self.policy, str) else self.policy.label()
        )
        return LatencyReport.from_records(
            records,
            scheme=self.scheme,
            policy=policy_label,
            arch=self.arch.name,
            requests=len(requests),
            simulated_us=clock,
            iterations=iterations,
            prefill_iterations=prefill_iterations,
            decode_iterations=decode_iterations,
            distinct_shapes=graphs.distinct_shapes,
            sweep_cache_hits=self.session.sweep_cache_hits - cache_hits_before,
            sweep_cache_misses=self.session.sweep_cache_misses - cache_misses_before,
            store_hits=self.session.sweep_store_hits - store_hits_before,
            slo_us=scenario.slo_us,
            shed_records=shed_records,
            preemptions=batcher.preemptions,
            restarted_tokens=batcher.restarted_tokens,
            kv_reserved_peak=batcher.kv_reserved_peak,
        )

    def _iteration_time_us(
        self,
        graphs: ServingGraphCache,
        plan: BatchPlan,
        scenario: ServingScenario,
    ) -> float:
        graph = graphs.graph_for(plan.rows, plan.keys)
        result = self.session.sweep_point(graph, SweepPoint(
            scheme=self.scheme, policy=self.policy, arch=self.arch,
        ))
        return result.total_time_us + scenario.iteration_overhead_us


def compare_schemes(
    scenario: ServingScenario,
    schemes: Sequence[str] = ("streamsync", "streamk", "cusync"),
    policy: SweepPolicy = "TileSync",
    arch: ArchLike = TESLA_V100,
    session: Optional[Session] = None,
    faults: Optional["ServingFaultPlan"] = None,
) -> Dict[str, LatencyReport]:
    """Run ``scenario`` under every scheme and collect the reports.

    All schemes share one :class:`~repro.pipeline.Session` (pass your own
    to persist its caches further), so the per-scheme cache hit counts in
    the reports tell the serving-cache story of each scheme's run alone —
    trace keys include the scheme, so schemes never share entries.  A
    fault plan, when given, applies identically to every scheme.
    """
    shared = session if session is not None else Session(arch=arch)
    reports: Dict[str, LatencyReport] = {}
    for scheme in schemes:
        simulator = ServingSimulator(
            scheme=scheme, policy=policy, arch=arch, session=shared
        )
        reports[scheme] = simulator.run(scenario, faults=faults)
    return reports
